//! Dispatcher counters and fleet-level `/v1/metrics` aggregation.
//!
//! The dispatcher's own exposition has two parts: its local counters
//! (`dispatch_*` — routing, retries, failover, liveness) and a fleet
//! summary built by scraping every live backend's `/v1/metrics` and summing
//! the counters that are additive across nodes. Derived values (rates,
//! percentiles, uptime) are *not* summed — averaging percentiles is
//! statistically meaningless, so those stay per-backend and are simply
//! omitted from the aggregate.

use std::sync::atomic::{AtomicU64, Ordering};

/// Backend metric names that are additive across the fleet: monotonic
/// counters plus the two point-in-time occupancy gauges, which sum to the
/// fleet's total queued/in-flight work.
const ADDITIVE: &[&str] = &["queue_depth", "in_flight"];

/// Dispatcher-local counters. All `&self`, all thread-safe.
#[derive(Debug, Default)]
pub struct DispatchMetrics {
    /// Requests forwarded to a backend (any endpoint, counted per request
    /// that got an answer, not per attempt).
    pub routed_total: AtomicU64,
    /// Forwarding attempts that failed and were retried on another backend
    /// or after a backoff sleep.
    pub retries_total: AtomicU64,
    /// Requests answered by a non-primary backend because the ring walk
    /// skipped one or more dead nodes.
    pub failover_total: AtomicU64,
}

impl DispatchMetrics {
    /// Render the dispatcher-local block of the exposition.
    /// `backends_live`/`backends_total` come from the probe state.
    pub fn render_local(&self, backends_live: usize, backends_total: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut metric = |name: &str, help: &str, value: u64| {
            let kind = if name.ends_with("_total") {
                "counter"
            } else {
                "gauge"
            };
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let _ = writeln!(out, "{name} {value}");
        };
        metric(
            "dispatch_backends_live",
            "Backends currently passing the /v1/healthz probe.",
            backends_live as u64,
        );
        metric(
            "dispatch_backends_total",
            "Backends configured on the ring.",
            backends_total as u64,
        );
        metric(
            "dispatch_routed_total",
            "Requests forwarded to a backend.",
            self.routed_total.load(Ordering::Relaxed),
        );
        metric(
            "dispatch_retries_total",
            "Forwarding attempts retried after a backend failure.",
            self.retries_total.load(Ordering::Relaxed),
        );
        metric(
            "dispatch_failover_total",
            "Requests served by a non-primary backend.",
            self.failover_total.load(Ordering::Relaxed),
        );
        out
    }
}

/// Sum the additive metrics across scraped backend expositions, preserving
/// first-seen order. A metric is additive when its name ends in `_total`
/// or is one of the occupancy gauges; everything else (rates, percentiles,
/// uptime) is dropped — those are meaningless summed.
pub fn aggregate(scrapes: &[String]) -> Vec<(String, u64)> {
    let mut order: Vec<String> = Vec::new();
    let mut sums: Vec<u64> = Vec::new();
    for text in scrapes {
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(name), Some(value)) = (parts.next(), parts.next()) else {
                continue;
            };
            let additive = name.ends_with("_total") || ADDITIVE.iter().any(|g| name.ends_with(g));
            if !additive {
                continue;
            }
            // Counter values are rendered as integers; skip anything else.
            let Ok(v) = value.parse::<u64>() else {
                continue;
            };
            match order.iter().position(|n| n == name) {
                Some(i) => sums[i] += v,
                None => {
                    order.push(name.to_string());
                    sums.push(v);
                }
            }
        }
    }
    order.into_iter().zip(sums).collect()
}

/// Render the aggregated fleet block: summed `r2d2_serve_*` counters with a
/// `# fleet sum over N live backend(s)` banner.
pub fn render_fleet(scrapes: &[String]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# fleet sums over {} live backend(s); per-backend rates and percentiles are not aggregated",
        scrapes.len()
    );
    for (name, value) in aggregate(scrapes) {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_sums_counters_and_drops_derived_values() {
        let a = "# HELP r2d2_serve_jobs_submitted_total x\n\
                 r2d2_serve_jobs_submitted_total 3\n\
                 r2d2_serve_queue_depth 2\n\
                 r2d2_serve_cache_hit_rate 0.5\n\
                 r2d2_serve_job_wall_ms_p99 120\n"
            .to_string();
        let b = "r2d2_serve_jobs_submitted_total 4\n\
                 r2d2_serve_queue_depth 1\n\
                 r2d2_serve_cache_hit_rate 1\n"
            .to_string();
        let agg = aggregate(&[a, b]);
        assert!(agg.contains(&("r2d2_serve_jobs_submitted_total".into(), 7)));
        assert!(agg.contains(&("r2d2_serve_queue_depth".into(), 3)));
        // Rates and percentiles must not appear — summing them is nonsense.
        assert!(agg.iter().all(|(n, _)| !n.contains("rate")));
        assert!(agg.iter().all(|(n, _)| !n.contains("p99")));
    }

    #[test]
    fn local_block_exposes_the_documented_names() {
        let m = DispatchMetrics::default();
        m.routed_total.store(9, Ordering::Relaxed);
        let text = m.render_local(2, 3);
        for needle in [
            "dispatch_backends_live 2",
            "dispatch_backends_total 3",
            "dispatch_routed_total 9",
            "dispatch_retries_total 0",
            "dispatch_failover_total 0",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
