#![warn(missing_docs)]
//! Multi-node dispatch tier for the R2D2 simulation service.
//!
//! `r2d2 serve` deduplicates identical in-flight submissions *within one
//! node* by keying its queue on [`r2d2_harness::JobSpec::content_hash`].
//! This crate lifts the same idea across a fleet: `r2d2 dispatch` runs a
//! long-lived scheduler in front of N `r2d2 serve` backends and routes each
//! job by consistent-hashing its content hash onto a ring, so identical
//! specs always reach the same node's dedup queue and simulate exactly
//! once — the cross-node analogue of R2D2 removing redundant address
//! computation across warps.
//!
//! The moving parts:
//!
//! - [`ring::Ring`] — consistent-hash ring with virtual nodes; losing a
//!   backend remaps only its own share of the key space.
//! - [`server::Dispatcher`] — the proxy itself: forwards the full `/v1`
//!   surface (submit, batch, status, cancel, chunked NDJSON progress
//!   relay), probes `/v1/healthz`, fails over along the ring walk, retries
//!   with backoff, and answers `503` + `Retry-After` (`no-backend-live`)
//!   when the whole fleet is down.
//! - [`metrics::DispatchMetrics`] — `dispatch_*` counters plus fleet
//!   aggregation: `GET /v1/metrics` sums every live backend's additive
//!   counters into one exposition.
//!
//! Like the rest of the workspace this adds **zero dependencies**: the
//! HTTP layer is `r2d2-serve`'s hand-rolled one, reused client-side and
//! server-side. See `DESIGN.md` § "Dispatch tier" for the protocol
//! details.

pub mod metrics;
pub mod ring;
pub mod server;

pub use metrics::{aggregate, DispatchMetrics};
pub use ring::Ring;
pub use server::{DispatchConfig, Dispatcher, DispatcherHandle};
