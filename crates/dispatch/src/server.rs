//! The dispatch tier: a long-lived scheduler in front of N `r2d2 serve`
//! backends.
//!
//! The dispatcher owns no queue and runs no simulations. It terminates each
//! client connection, picks a backend by consistent-hashing the job's
//! content hash onto the [`crate::ring::Ring`], forwards the request over
//! the same hand-rolled HTTP layer the service uses, and relays the answer.
//! Identical specs therefore always land on the same node's dedup queue —
//! the cross-node analogue of R2D2's intra-GPU redundancy removal.
//!
//! ## Surface
//!
//! The dispatcher speaks **only** `/v1` — it is a new component, so it
//! carries none of the pre-v1 deprecated aliases. Every proxied endpoint
//! behaves exactly as the backend's (`POST /v1/jobs`, `POST /v1/jobs/batch`,
//! `GET`/`DELETE /v1/jobs/<id>`, chunked NDJSON `GET /v1/jobs/<id>/progress`),
//! so `r2d2 submit/cancel/watch --addr` work unchanged against it.
//! `GET /v1/metrics` is the fleet view: dispatcher-local counters plus the
//! sum of every live backend's additive counters. `GET /v1/healthz` answers
//! for the fleet (`200 ok` while at least one backend is live).
//!
//! ## Failover
//!
//! A probe loop hits every backend's `/v1/healthz` on an interval; a failed
//! forward marks the backend down immediately (the probe revives it). Dead
//! backends are skipped along the ring walk, so each orphaned key falls
//! through to the next distinct node; requests retry with a linear backoff
//! while the fleet is unreachable and surface `503` + `Retry-After` with
//! the `no-backend-live` error code once attempts are exhausted. Job
//! lookups (`GET`/`DELETE`/progress) additionally fan out past a `404` to
//! the other live nodes, because a job submitted during a failover window
//! lives on a non-primary node until its primary returns.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use r2d2_harness::json::{self, obj, Value};
use r2d2_harness::JobSpec;
use r2d2_serve::api::{error_body_retry, error_response, error_response_retry};
use r2d2_serve::http::{
    client_request, client_stream_start, read_request, ChunkedWriter, ClientResponse, ParseError,
    Request, Response,
};
use r2d2_serve::server::{batch_specs, signal_received};

use crate::metrics::{render_fleet, DispatchMetrics};
use crate::ring::Ring;

/// Tunables for one dispatcher instance.
#[derive(Debug, Clone)]
pub struct DispatchConfig {
    /// Bind address, e.g. `127.0.0.1:8786` (`:0` picks a free port).
    pub addr: String,
    /// Backend `r2d2 serve` addresses, in ring order. The ring hashes by
    /// *index*, so keeping this list stable keeps the routing stable.
    pub backends: Vec<String>,
    /// Interval between `/v1/healthz` probe sweeps.
    pub probe_interval: Duration,
    /// Per-forward timeout for buffered requests (everything but `?wait=1`
    /// submissions and progress streams).
    pub request_timeout: Duration,
    /// Timeout for forwards that intentionally block: `?wait=1` submissions
    /// and each read of a progress stream.
    pub wait_timeout: Duration,
    /// Full passes over the candidate list before giving up with 503.
    pub retry_attempts: u32,
    /// Base backoff between passes (linear: `backoff * pass`).
    pub retry_backoff: Duration,
    /// Per-request log lines on stderr.
    pub verbose: bool,
}

impl Default for DispatchConfig {
    fn default() -> Self {
        DispatchConfig {
            addr: "127.0.0.1:8786".into(),
            backends: Vec::new(),
            probe_interval: Duration::from_millis(500),
            request_timeout: Duration::from_secs(10),
            wait_timeout: Duration::from_secs(3600),
            retry_attempts: 3,
            retry_backoff: Duration::from_millis(50),
            verbose: false,
        }
    }
}

/// Shared dispatcher state: config, ring, liveness flags, counters.
struct Shared {
    cfg: DispatchConfig,
    ring: Ring,
    /// Liveness per backend, indexed like `cfg.backends`. Optimistically
    /// true at startup; a failed forward or probe clears it, a passing
    /// probe (or successful forward) sets it.
    alive: Vec<AtomicBool>,
    metrics: DispatchMetrics,
    shutdown: AtomicBool,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal_received()
    }

    fn live_count(&self) -> usize {
        self.alive
            .iter()
            .filter(|a| a.load(Ordering::Relaxed))
            .count()
    }

    /// Candidate order for `hash`: the ring walk, live backends first (in
    /// walk order), then dead ones (a probe may be stale — trying them is
    /// the only way back when everything is marked down).
    fn candidates(&self, hash: u64) -> Vec<usize> {
        let order = self.ring.route(hash);
        let mut live: Vec<usize> = Vec::with_capacity(order.len());
        let mut dead: Vec<usize> = Vec::new();
        for b in order {
            if self.alive[b].load(Ordering::Relaxed) {
                live.push(b);
            } else {
                dead.push(b);
            }
        }
        live.extend(dead);
        live
    }
}

/// Handle for requesting shutdown from another thread (tests, embedders).
#[derive(Clone)]
pub struct DispatcherHandle {
    shared: Arc<Shared>,
}

impl DispatcherHandle {
    /// Request graceful shutdown, as SIGTERM would.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }
}

/// A bound-but-not-yet-running dispatcher.
pub struct Dispatcher {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Dispatcher {
    /// Bind the listener and build the ring. Fails fast on an empty
    /// backend list — a dispatcher with nothing behind it is a
    /// misconfiguration, not a degraded mode.
    pub fn bind(cfg: DispatchConfig) -> std::io::Result<Dispatcher> {
        if cfg.backends.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "dispatch requires at least one backend",
            ));
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        let ring = Ring::new(cfg.backends.len());
        let alive = (0..cfg.backends.len())
            .map(|_| AtomicBool::new(true))
            .collect();
        let shared = Arc::new(Shared {
            ring,
            alive,
            metrics: DispatchMetrics::default(),
            shutdown: AtomicBool::new(false),
            cfg,
        });
        Ok(Dispatcher { listener, shared })
    }

    /// The actual bound address (resolves `:0` port picks).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown handle, cloneable across threads.
    pub fn handle(&self) -> DispatcherHandle {
        DispatcherHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Run until shutdown: probe loop + accept loop. The dispatcher holds
    /// no jobs, so "drain" is just closing the listener — in-flight relays
    /// finish on their own threads.
    pub fn run(self) -> std::io::Result<()> {
        let Dispatcher { listener, shared } = self;
        listener.set_nonblocking(true)?;

        let prober = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("r2d2-dispatch-probe".into())
                .spawn(move || probe_loop(&shared))
                .expect("spawn probe loop")
        };

        while !shared.shutting_down() {
            match listener.accept() {
                Ok((stream, peer)) => {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name("r2d2-dispatch-conn".into())
                        .spawn(move || handle_connection(stream, peer, &shared))
                        .expect("spawn connection handler");
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        shared.shutdown.store(true, Ordering::SeqCst);
        let _ = prober.join();
        if shared.cfg.verbose {
            eprintln!("[dispatch] bye");
        }
        Ok(())
    }
}

/// Sweep every backend's `/v1/healthz` on the configured interval.
fn probe_loop(shared: &Arc<Shared>) {
    // Short timeout: a probe exists to detect dead nodes quickly, not to
    // wait politely on a wedged one.
    let timeout = shared.cfg.request_timeout.min(Duration::from_secs(2));
    while !shared.shutting_down() {
        for (i, addr) in shared.cfg.backends.iter().enumerate() {
            let up = matches!(
                client_request(addr, "GET", "/v1/healthz", None, timeout),
                Ok(resp) if resp.status == 200
            );
            let was = shared.alive[i].swap(up, Ordering::Relaxed);
            if shared.cfg.verbose && was != up {
                eprintln!(
                    "[dispatch] backend {addr} -> {}",
                    if up { "live" } else { "down" }
                );
            }
        }
        // Sleep in small steps so shutdown is prompt even with long
        // intervals.
        let mut remaining = shared.cfg.probe_interval;
        while !remaining.is_zero() && !shared.shutting_down() {
            let step = remaining.min(Duration::from_millis(50));
            std::thread::sleep(step);
            remaining -= step;
        }
    }
}

fn handle_connection(mut stream: TcpStream, peer: std::net::SocketAddr, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let response = match read_request(&mut stream) {
        Ok(req) => {
            // Progress relays write their own chunked response.
            if req.method == "GET" {
                if let Some(id) = req
                    .path
                    .strip_prefix("/v1/jobs/")
                    .and_then(|rest| rest.strip_suffix("/progress"))
                {
                    if shared.cfg.verbose {
                        eprintln!("[dispatch] {peer} GET {} -> relay", req.path);
                    }
                    relay_progress(id, &mut stream, shared);
                    return;
                }
            }
            let resp = route(&req, shared);
            if shared.cfg.verbose {
                eprintln!(
                    "[dispatch] {peer} {} {} -> {}",
                    req.method, req.path, resp.status
                );
            }
            resp
        }
        Err(ParseError::ConnectionClosed) => return,
        Err(ParseError::TooLarge) => error_response(
            413,
            "payload-too-large",
            "request head or body exceeds the size limits",
        ),
        Err(ParseError::Malformed(e)) => {
            error_response(400, "malformed-request", &format!("malformed request: {e}"))
        }
        Err(ParseError::Io(_)) => return,
    };
    let _ = response.write_to(&mut stream);
}

fn route(req: &Request, shared: &Arc<Shared>) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/jobs") => post_jobs(req, shared),
        ("POST", "/v1/jobs/batch") => post_batch(req, shared),
        ("GET" | "DELETE", p) if p.starts_with("/v1/jobs/") => {
            forward_job(req, &p["/v1/jobs/".len()..], shared)
        }
        ("GET", "/v1/healthz") => {
            if shared.shutting_down() {
                error_response(503, "draining", "dispatcher is draining")
            } else if shared.live_count() > 0 {
                Response::text(200, "ok")
            } else {
                no_backend_live()
            }
        }
        ("GET", "/v1/metrics") => metrics(shared),
        ("POST", "/v1/shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::text(200, "draining")
        }
        ("GET" | "POST" | "DELETE", p) => {
            error_response(404, "not-found", &format!("no route for {p}"))
        }
        _ => error_response(
            405,
            "method-not-allowed",
            &format!("method {} is not supported", req.method),
        ),
    }
}

/// The terminal "fleet unreachable" answer: 503 + `Retry-After`.
fn no_backend_live() -> Response {
    error_response_retry(503, "no-backend-live", "no backend is live; retry later", 1)
}

/// Rebuild `path?query` for forwarding (the parser split them).
fn path_with_query(req: &Request) -> String {
    if req.query.is_empty() {
        return req.path.clone();
    }
    let q: Vec<String> = req
        .query
        .iter()
        .map(|(k, v)| {
            if v.is_empty() {
                k.clone()
            } else {
                format!("{k}={v}")
            }
        })
        .collect();
    format!("{}?{}", req.path, q.join("&"))
}

/// Translate a backend answer into our response to the client, preserving
/// status, body, content type, and the `Retry-After` hint.
fn relay(resp: &ClientResponse) -> Response {
    let content_type = resp.header("content-type").unwrap_or("application/json");
    let mut out = if content_type.starts_with("text/plain") {
        // `Response::text` appends the newline the backend already sent, so
        // build the body verbatim through the JSON constructor's sibling.
        Response {
            status: resp.status,
            headers: Vec::new(),
            content_type: "text/plain; charset=utf-8",
            body: resp.body.clone().into_bytes(),
        }
    } else {
        Response {
            status: resp.status,
            headers: Vec::new(),
            content_type: "application/json",
            body: resp.body.clone().into_bytes(),
        }
    };
    if let Some(ra) = resp.header("retry-after") {
        out = out.header("Retry-After", ra);
    }
    out
}

/// Forward `method path` with `body` along an explicit candidate order,
/// retrying the whole list with linear backoff. Returns the first answer a
/// backend produced (whatever its status), or the `no-backend-live` 503.
fn forward_to(
    shared: &Arc<Shared>,
    candidates: &[usize],
    primary: Option<usize>,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> Result<(ClientResponse, usize), Response> {
    for attempt in 0..shared.cfg.retry_attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(shared.cfg.retry_backoff * attempt);
        }
        for &b in candidates {
            match client_request(&shared.cfg.backends[b], method, path, body, timeout) {
                Ok(resp) => {
                    shared.alive[b].store(true, Ordering::Relaxed);
                    shared.metrics.routed_total.fetch_add(1, Ordering::Relaxed);
                    if primary.is_some_and(|p| p != b) {
                        shared
                            .metrics
                            .failover_total
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok((resp, b));
                }
                Err(e) => {
                    shared.alive[b].store(false, Ordering::Relaxed);
                    shared.metrics.retries_total.fetch_add(1, Ordering::Relaxed);
                    if shared.cfg.verbose {
                        eprintln!(
                            "[dispatch] forward {method} {path} to {} failed: {e}",
                            shared.cfg.backends[b]
                        );
                    }
                }
            }
        }
    }
    Err(no_backend_live())
}

/// [`forward_to`] with the candidate order derived from `hash`.
fn forward(
    shared: &Arc<Shared>,
    hash: u64,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> Result<(ClientResponse, usize), Response> {
    let candidates = shared.candidates(hash);
    let primary = shared.ring.primary(hash);
    forward_to(shared, &candidates, primary, method, path, body, timeout)
}

/// `POST /v1/jobs`: hash the spec, route, forward the body verbatim.
fn post_jobs(req: &Request, shared: &Arc<Shared>) -> Response {
    let Some(body) = req.body_str() else {
        return error_response(400, "bad-json", "body must be UTF-8 JSON");
    };
    // The hash decides the route; validation is the backend's job. An
    // unparseable body routes to the hash-0 primary, which rejects it with
    // the same error schema we would.
    let hash = json::parse(body)
        .ok()
        .and_then(|v| JobSpec::from_json_request(&v).ok())
        .map_or(0, |spec| spec.content_hash());
    let wait = req.query_param("wait").is_some_and(|v| v != "0");
    let timeout = if wait {
        shared.cfg.wait_timeout
    } else {
        shared.cfg.request_timeout
    };
    match forward(
        shared,
        hash,
        "POST",
        &path_with_query(req),
        Some(body),
        timeout,
    ) {
        Ok((resp, _)) => relay(&resp),
        Err(resp) => resp,
    }
}

/// `POST /v1/jobs/batch`: split the batch by ring position, forward each
/// sub-batch to its owner, and reassemble the per-job array in request
/// order. Set-shaped bodies (`{"set": "fig12"}`) are resolved locally with
/// the same resolver the backend uses, so the member jobs still route by
/// their individual hashes instead of the whole set landing on one node.
fn post_batch(req: &Request, shared: &Arc<Shared>) -> Response {
    let Some(body) = req.body_str() else {
        return error_response(400, "bad-json", "body must be UTF-8 JSON");
    };
    let parsed = match json::parse(body) {
        Ok(v) => v,
        Err(e) => return error_response(400, "bad-json", &format!("bad JSON: {e}")),
    };
    let specs = match batch_specs(&parsed) {
        Ok(specs) => specs,
        Err(resp) => return resp,
    };
    // Keep the raw array items when the client sent an array: they may
    // carry execution knobs (`threads`) that `JobSpec::to_json` omits.
    let raw_items: Option<&Vec<Value>> = match &parsed {
        Value::Arr(items) => Some(items),
        _ => None,
    };

    // Group spec indices by primary backend, preserving request order
    // within each group.
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let primary = shared
            .ring
            .primary(spec.content_hash())
            .expect("ring is non-empty");
        match groups.iter_mut().find(|(b, _)| *b == primary) {
            Some((_, idxs)) => idxs.push(i),
            None => groups.push((primary, vec![i])),
        }
    }

    let mut slots: Vec<Option<Value>> = vec![None; specs.len()];
    let mut accepted = 0u64;
    let mut shed = 0u64;
    let mut groups_answered = 0usize;
    for (primary, idxs) in &groups {
        let sub_body = Value::Arr(
            idxs.iter()
                .map(|&i| match raw_items {
                    Some(items) => items[i].clone(),
                    None => specs[i].to_json(),
                })
                .collect(),
        )
        .to_json();
        // Candidate order from the first member's hash (every member in the
        // group shares the primary; the tail order is close enough).
        let candidates = shared.candidates(specs[idxs[0]].content_hash());
        let outcome = forward_to(
            shared,
            &candidates,
            Some(*primary),
            "POST",
            "/v1/jobs/batch",
            Some(&sub_body),
            shared.cfg.request_timeout,
        );
        match outcome {
            Ok((resp, _)) if resp.status == 200 => {
                groups_answered += 1;
                let v = json::parse(&resp.body).unwrap_or(Value::Null);
                let jobs = match v.get("jobs") {
                    Some(Value::Arr(jobs)) => jobs.clone(),
                    _ => Vec::new(),
                };
                for (slot, job) in idxs.iter().zip(jobs) {
                    if job.get("error").is_some() {
                        shed += 1;
                    } else {
                        accepted += 1;
                    }
                    slots[*slot] = Some(job);
                }
            }
            Ok((resp, _)) => {
                // The whole sub-batch was rejected (429 all-shed, 503
                // draining): mirror the backend's error object per job.
                groups_answered += 1;
                let v = json::parse(&resp.body).unwrap_or(Value::Null);
                for &slot in idxs {
                    shed += 1;
                    slots[slot] = Some(v.clone());
                }
            }
            Err(_) => {
                for &slot in idxs {
                    shed += 1;
                    slots[slot] = Some(error_body_retry(
                        "no-backend-live",
                        "no backend is live; retry later",
                        Some(1),
                    ));
                }
            }
        }
    }

    if accepted == 0 {
        if groups_answered == 0 {
            return no_backend_live();
        }
        return error_response_retry(429, "queue-full", "queue full; retry later", 1);
    }
    Response::json(
        200,
        &obj(vec![
            ("count", json::int(accepted)),
            ("shed", json::int(shed)),
            (
                "jobs",
                Value::Arr(
                    slots
                        .into_iter()
                        .map(|s| s.unwrap_or(Value::Null))
                        .collect(),
                ),
            ),
        ]),
    )
}

/// `GET`/`DELETE /v1/jobs/<id>`: route by the id (it *is* the content
/// hash), but fan out past a 404 — a job submitted while its primary was
/// down lives on a failover node until the primary returns.
fn forward_job(req: &Request, id: &str, shared: &Arc<Shared>) -> Response {
    let Some(hash) = r2d2_serve::queue::parse_job_id(id) else {
        return error_response(400, "bad-job-id", "job ids are 16 hex digits");
    };
    let candidates = shared.candidates(hash);
    let primary = shared.ring.primary(hash);
    let path = path_with_query(req);
    let mut first_404: Option<Response> = None;
    for &b in &candidates {
        match client_request(
            &shared.cfg.backends[b],
            &req.method,
            &path,
            None,
            shared.cfg.request_timeout,
        ) {
            Ok(resp) => {
                shared.alive[b].store(true, Ordering::Relaxed);
                if resp.status == 404 {
                    if first_404.is_none() {
                        first_404 = Some(relay(&resp));
                    }
                    continue;
                }
                shared.metrics.routed_total.fetch_add(1, Ordering::Relaxed);
                if primary.is_some_and(|p| p != b) {
                    shared
                        .metrics
                        .failover_total
                        .fetch_add(1, Ordering::Relaxed);
                }
                return relay(&resp);
            }
            Err(_) => {
                shared.alive[b].store(false, Ordering::Relaxed);
                shared.metrics.retries_total.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    match first_404 {
        Some(resp) => {
            shared.metrics.routed_total.fetch_add(1, Ordering::Relaxed);
            resp
        }
        None => no_backend_live(),
    }
}

/// `GET /v1/jobs/<id>/progress`: open the backend stream, then relay the
/// chunked NDJSON body chunk-for-chunk. The head/body split of
/// [`client_stream_start`] lets us try another backend on 404/connect
/// failure *before* committing to a response head.
fn relay_progress(id: &str, stream: &mut TcpStream, shared: &Arc<Shared>) {
    let Some(hash) = r2d2_serve::queue::parse_job_id(id) else {
        let _ = error_response(400, "bad-job-id", "job ids are 16 hex digits").write_to(stream);
        return;
    };
    let candidates = shared.candidates(hash);
    let primary = shared.ring.primary(hash);
    let path = format!("/v1/jobs/{id}/progress");
    let mut first_404: Option<(u16, String)> = None;
    for &b in &candidates {
        let open = match client_stream_start(
            &shared.cfg.backends[b],
            "GET",
            &path,
            shared.cfg.wait_timeout,
        ) {
            Ok(open) => {
                shared.alive[b].store(true, Ordering::Relaxed);
                open
            }
            Err(_) => {
                shared.alive[b].store(false, Ordering::Relaxed);
                shared.metrics.retries_total.fetch_add(1, Ordering::Relaxed);
                continue;
            }
        };
        if open.status == 404 {
            if first_404.is_none() {
                let mut body = String::new();
                let _ = open.drain(&mut |chunk| {
                    body.push_str(&String::from_utf8_lossy(chunk));
                    Ok(())
                });
                first_404 = Some((404, body));
            }
            continue;
        }
        shared.metrics.routed_total.fetch_add(1, Ordering::Relaxed);
        if primary.is_some_and(|p| p != b) {
            shared
                .metrics
                .failover_total
                .fetch_add(1, Ordering::Relaxed);
        }
        if open.is_chunked() {
            let status = open.status;
            let Ok(mut w) = ChunkedWriter::start(stream, status, "application/x-ndjson") else {
                return;
            };
            let _ = open.drain(&mut |chunk| w.chunk(chunk));
            let _ = w.finish();
        } else {
            // Buffered upstream answer (an error body): relay it whole.
            let status = open.status;
            let mut body = Vec::new();
            let _ = open.drain(&mut |chunk| {
                body.extend_from_slice(chunk);
                Ok(())
            });
            let resp = Response {
                status,
                headers: Vec::new(),
                content_type: "application/json",
                body,
            };
            let _ = resp.write_to(stream);
        }
        return;
    }
    match first_404 {
        Some((status, body)) => {
            shared.metrics.routed_total.fetch_add(1, Ordering::Relaxed);
            let resp = Response {
                status,
                headers: Vec::new(),
                content_type: "application/json",
                body: body.into_bytes(),
            };
            let _ = resp.write_to(stream);
        }
        None => {
            let _ = no_backend_live().write_to(stream);
        }
    }
}

/// `GET /v1/metrics`: dispatcher-local counters plus the summed additive
/// counters scraped from every live backend.
fn metrics(shared: &Arc<Shared>) -> Response {
    let mut scrapes = Vec::new();
    for (i, addr) in shared.cfg.backends.iter().enumerate() {
        if !shared.alive[i].load(Ordering::Relaxed) {
            continue;
        }
        if let Ok(resp) =
            client_request(addr, "GET", "/v1/metrics", None, shared.cfg.request_timeout)
        {
            if resp.status == 200 {
                scrapes.push(resp.body);
            }
        }
    }
    let mut text = shared
        .metrics
        .render_local(shared.live_count(), shared.cfg.backends.len());
    text.push_str(&render_fleet(&scrapes));
    Response::text(200, &text)
}
