//! Consistent-hash ring over the backend fleet.
//!
//! R2D2 removes redundant work by exploiting the linearity of address
//! generation inside one GPU; the dispatch tier removes redundant
//! *simulations* by exploiting the same property one level up. A
//! [`r2d2_harness::JobSpec`]'s `content_hash` is a pure function of the
//! experiment, so hashing it onto a stable ring of backends means identical
//! specs always land on the same node — where the per-node dedup queue
//! coalesces them into a single simulation and the content-addressed cache
//! answers repeats for free. A round-robin or least-loaded policy would
//! scatter duplicates across nodes and simulate each copy.
//!
//! The ring is the classic consistent-hashing construction: every backend
//! contributes [`VNODES`] pseudo-random points on a `u64` circle, a job is
//! routed to the first point at or after its hash, and losing a backend
//! only remaps the keys that pointed at it (1/N of the space, spread evenly
//! thanks to the virtual nodes) instead of reshuffling everything.

/// Virtual nodes per backend. 64 keeps the per-backend share of the key
/// space within a few percent of uniform while the ring stays tiny
/// (N × 64 points, binary-searched).
pub const VNODES: usize = 64;

/// FNV-1a over a byte string — the same hash family the harness uses for
/// `JobSpec::content_hash`, re-rolled here so the ring does not depend on a
/// spec to hash arbitrary labels.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer. FNV-1a alone clusters on near-identical short
/// inputs (the vnode labels differ in one digit), which skews the ring
/// badly; the avalanche pass spreads the points uniformly.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A fixed ring over `n` backends (identified by index `0..n`).
///
/// The ring itself is immutable; liveness is the caller's concern. Routing
/// returns the *full preference order* — every backend exactly once, in
/// ring-walk order from the key's position — so the caller can skip dead
/// nodes without the ring needing to know who is down. That walk order IS
/// the failover policy: when the primary dies, each of its keys falls
/// through to the next distinct backend on the circle, and comes back home
/// when the probe loop marks the primary live again.
#[derive(Debug)]
pub struct Ring {
    /// `(point, backend index)` sorted by point.
    points: Vec<(u64, usize)>,
    n: usize,
}

impl Ring {
    /// Build the ring for `n` backends. Points are derived from the backend
    /// *index*, not its address, so the mapping is stable across restarts
    /// as long as the `--backends` list keeps its order.
    pub fn new(n: usize) -> Ring {
        let mut points = Vec::with_capacity(n * VNODES);
        for backend in 0..n {
            for vnode in 0..VNODES {
                let label = format!("backend-{backend}-vnode-{vnode}");
                points.push((mix(fnv1a(label.as_bytes())), backend));
            }
        }
        points.sort_unstable();
        Ring { points, n }
    }

    /// Number of backends on the ring.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the ring has no backends.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Preference order for `hash`: every backend exactly once, starting at
    /// the first ring point at or after `hash` (wrapping), keeping only the
    /// first occurrence of each backend along the walk. `route(h)[0]` is
    /// the primary; the rest are failover candidates in order.
    pub fn route(&self, hash: u64) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.n);
        if self.points.is_empty() {
            return order;
        }
        let start = self.points.partition_point(|&(p, _)| p < hash);
        let mut seen = vec![false; self.n];
        for i in 0..self.points.len() {
            let (_, backend) = self.points[(start + i) % self.points.len()];
            if !seen[backend] {
                seen[backend] = true;
                order.push(backend);
                if order.len() == self.n {
                    break;
                }
            }
        }
        order
    }

    /// The primary backend for `hash` (`route(hash)[0]`).
    pub fn primary(&self, hash: u64) -> Option<usize> {
        self.route(hash).first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_is_a_permutation_and_deterministic() {
        let ring = Ring::new(5);
        for hash in [0u64, 1, u64::MAX, 0xdead_beef, 42] {
            let order = ring.route(hash);
            assert_eq!(order.len(), 5);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4], "not a permutation: {order:?}");
            assert_eq!(order, ring.route(hash), "non-deterministic");
        }
    }

    #[test]
    fn same_hash_same_primary_distinct_hashes_spread() {
        let ring = Ring::new(3);
        // Identical keys always land on the same node — the property the
        // cross-node dedup argument rests on.
        assert_eq!(ring.primary(12345), ring.primary(12345));
        // And the key space is actually spread: over many keys every
        // backend should be primary for a reasonable share.
        let mut counts = [0usize; 3];
        for i in 0..3000u64 {
            counts[ring.primary(fnv1a(&i.to_le_bytes())).unwrap()] += 1;
        }
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (500..=1700).contains(&c),
                "backend {b} owns {c}/3000 keys — ring badly unbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn losing_a_backend_only_remaps_its_own_keys() {
        // Consistency property: keys whose primary survives keep it when
        // the caller skips a dead backend (the walk order never changes).
        let ring = Ring::new(4);
        let dead = 2usize;
        for i in 0..500u64 {
            let hash = fnv1a(&i.to_le_bytes());
            let order = ring.route(hash);
            let with_all = order[0];
            let without_dead = *order.iter().find(|&&b| b != dead).unwrap();
            if with_all != dead {
                assert_eq!(with_all, without_dead, "key {i} moved needlessly");
            }
        }
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = Ring::new(0);
        assert!(ring.is_empty());
        assert!(ring.route(7).is_empty());
        assert_eq!(ring.primary(7), None);
    }
}
