//! In-process integration tests of the dispatch tier: two real `r2d2 serve`
//! backends on loopback ports, a real dispatcher in front of them, real
//! HTTP end to end — only the process boundary is elided (the CLI smoke
//! test in `crates/cli/tests/dispatch.rs` covers that).

use std::path::PathBuf;
use std::time::Duration;

use r2d2_dispatch::{DispatchConfig, Dispatcher, DispatcherHandle, Ring};
use r2d2_harness::{JobSpec, ModelSpec};
use r2d2_serve::{client, Server, ServerConfig, ServerHandle};
use r2d2_workloads::Size;

const T: Duration = Duration::from_secs(120);

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("r2d2-dispatch-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

struct Backend {
    addr: String,
    handle: ServerHandle,
    join: Option<std::thread::JoinHandle<std::io::Result<()>>>,
    results: PathBuf,
}

impl Backend {
    fn start(tag: &str, idx: usize) -> Backend {
        let results = tmpdir(&format!("{tag}-b{idx}"));
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_cap: 32,
            job_timeout: Duration::from_secs(300),
            use_cache: true,
            results_dir: Some(results.clone()),
            verbose: false,
            ..ServerConfig::default()
        };
        let server = Server::bind(cfg).expect("bind backend");
        let addr = server.local_addr().unwrap().to_string();
        let handle = server.handle();
        let join = Some(std::thread::spawn(move || server.run()));
        Backend {
            addr,
            handle,
            join,
            results,
        }
    }

    /// Shut the backend down and wait for its port to close.
    fn kill(&mut self) {
        self.handle.shutdown();
        if let Some(join) = self.join.take() {
            join.join().expect("backend thread").expect("clean exit");
        }
    }

    fn metric(&self, name: &str) -> u64 {
        let text = client::metrics(&self.addr, T).expect("backend metrics");
        parse_metric(&text, name).unwrap_or_else(|| panic!("no {name} in:\n{text}"))
    }
}

impl Drop for Backend {
    fn drop(&mut self) {
        self.kill();
        let _ = std::fs::remove_dir_all(&self.results);
    }
}

fn parse_metric(text: &str, name: &str) -> Option<u64> {
    text.lines()
        .find(|l| l.starts_with(&format!("{name} ")))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

/// Start a dispatcher over `backends` with a fast probe loop.
fn start_dispatcher(
    backends: &[&Backend],
) -> (
    String,
    DispatcherHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let cfg = DispatchConfig {
        addr: "127.0.0.1:0".into(),
        backends: backends.iter().map(|b| b.addr.clone()).collect(),
        probe_interval: Duration::from_millis(100),
        request_timeout: Duration::from_secs(10),
        retry_attempts: 2,
        retry_backoff: Duration::from_millis(20),
        verbose: false,
        ..DispatchConfig::default()
    };
    let d = Dispatcher::bind(cfg).expect("bind dispatcher");
    let addr = d.local_addr().unwrap().to_string();
    let handle = d.handle();
    let join = std::thread::spawn(move || d.run());
    (addr, handle, join)
}

fn stop_dispatcher(handle: &DispatcherHandle, join: std::thread::JoinHandle<std::io::Result<()>>) {
    handle.shutdown();
    join.join().expect("dispatcher thread").expect("clean exit");
}

/// A spec whose ring primary (on a 2-backend ring) is `want`.
fn spec_with_primary(want: usize) -> JobSpec {
    let ring = Ring::new(2);
    for sms in 1..=64u32 {
        let mut spec = JobSpec::new("NN", Size::Small, ModelSpec::Baseline);
        spec.overrides.num_sms = Some(sms);
        if ring.primary(spec.content_hash()) == Some(want) {
            return spec;
        }
    }
    unreachable!("64 distinct specs never hashed onto backend {want}");
}

#[test]
fn duplicate_specs_route_to_one_node_and_simulate_once() {
    let b0 = Backend::start("dedup", 0);
    let b1 = Backend::start("dedup", 1);
    let (addr, handle, join) = start_dispatcher(&[&b0, &b1]);
    let spec = JobSpec::new("NN", Size::Small, ModelSpec::Baseline);

    // The same spec submitted twice through the dispatcher must land on
    // the same backend's dedup queue and simulate exactly once.
    let first = client::submit(&addr, &spec, true, T).expect("submit via dispatcher");
    assert_eq!(first.status, 200, "{:?}", first.body);
    assert_eq!(first.job_status(), Some("done"));
    assert_eq!(first.job_id(), Some(spec.hash_hex().as_str()));
    let second = client::submit(&addr, &spec, true, T).expect("resubmit via dispatcher");
    assert_eq!(second.status, 200, "{:?}", second.body);
    assert_eq!(
        second.body.get("deduped"),
        Some(&r2d2_harness::json::Value::Bool(true)),
        "{:?}",
        second.body
    );

    // Metrics-verified: exactly one simulation across the fleet, and both
    // submissions on one node (the other saw nothing).
    let sims = [
        b0.metric("r2d2_serve_jobs_simulated_total"),
        b1.metric("r2d2_serve_jobs_simulated_total"),
    ];
    let subs = [
        b0.metric("r2d2_serve_jobs_submitted_total"),
        b1.metric("r2d2_serve_jobs_submitted_total"),
    ];
    assert_eq!(sims.iter().sum::<u64>(), 1, "fleet simulated {sims:?}");
    assert_eq!(subs.iter().sum::<u64>(), 2);
    assert!(
        subs.contains(&2) && subs.contains(&0),
        "both submissions must land on one node: {subs:?}"
    );

    // The aggregated exposition sees the fleet totals plus the dispatcher's
    // own counters.
    let text = client::metrics(&addr, T).expect("dispatcher metrics");
    assert_eq!(
        parse_metric(&text, "r2d2_serve_jobs_simulated_total"),
        Some(1),
        "aggregate:\n{text}"
    );
    assert_eq!(
        parse_metric(&text, "r2d2_serve_jobs_submitted_total"),
        Some(2)
    );
    assert_eq!(parse_metric(&text, "dispatch_backends_live"), Some(2));
    assert!(parse_metric(&text, "dispatch_routed_total").unwrap() >= 2);

    // GET and DELETE proxy through: the done job is visible by id, a
    // terminal cancel is a 200 no-op, and the error paths use the schema.
    let g = client::job_status(&addr, &spec.hash_hex(), T).unwrap();
    assert_eq!((g.status, g.job_status()), (200, Some("done")));
    let c = client::cancel(&addr, &spec.hash_hex(), T).unwrap();
    assert_eq!((c.status, c.job_status()), (200, Some("done")));
    let miss = client::job_status(&addr, "0000000000000000", T).unwrap();
    assert_eq!(miss.status, 404);
    assert_eq!(miss.api_error().unwrap().code, "unknown-job");
    let bad = client::job_status(&addr, "nope", T).unwrap();
    assert_eq!(bad.status, 400);
    assert_eq!(bad.api_error().unwrap().code, "bad-job-id");

    stop_dispatcher(&handle, join);
}

#[test]
fn batches_split_across_the_ring_and_reassemble_in_order() {
    let b0 = Backend::start("batch", 0);
    let b1 = Backend::start("batch", 1);
    let (addr, handle, join) = start_dispatcher(&[&b0, &b1]);

    // 8 distinct specs; compute the expected per-backend split with the
    // same ring the dispatcher builds (hashing is deterministic).
    let ring = Ring::new(2);
    let specs: Vec<JobSpec> = (1..=8u32)
        .map(|sms| {
            let mut s = JobSpec::new("NN", Size::Small, ModelSpec::Baseline);
            s.overrides.num_sms = Some(sms);
            s
        })
        .collect();
    let expected: Vec<u64> = (0..2)
        .map(|b| {
            specs
                .iter()
                .filter(|s| ring.primary(s.content_hash()) == Some(b))
                .count() as u64
        })
        .collect();

    let o = client::submit_batch(&addr, &specs, T).expect("batch via dispatcher");
    assert_eq!(o.status, 200, "{:?}", o.body);
    assert_eq!(o.body.get("count").and_then(|v| v.as_u64()), Some(8));
    let jobs = o.body.get("jobs").and_then(|v| v.as_arr()).expect("jobs");
    assert_eq!(jobs.len(), 8);
    // Reassembly: the per-job array is in request order even though the
    // batch was split across two nodes.
    for (job, spec) in jobs.iter().zip(&specs) {
        assert_eq!(
            job.get("id").and_then(|v| v.as_str()),
            Some(spec.hash_hex().as_str()),
            "{:?}",
            o.body
        );
    }
    let subs = [
        b0.metric("r2d2_serve_jobs_submitted_total"),
        b1.metric("r2d2_serve_jobs_submitted_total"),
    ];
    assert_eq!(subs.to_vec(), expected, "split does not match the ring");

    stop_dispatcher(&handle, join);
}

#[test]
fn failover_survives_one_backend_death_and_503s_when_all_are_dead() {
    let mut b0 = Backend::start("failover", 0);
    let mut b1 = Backend::start("failover", 1);
    let (addr, handle, join) = start_dispatcher(&[&b0, &b1]);

    // A spec owned by backend 0, submitted while both are live, lands there.
    let spec0 = spec_with_primary(0);
    let o = client::submit(&addr, &spec0, true, T).unwrap();
    assert_eq!(o.status, 200, "{:?}", o.body);
    assert_eq!(b0.metric("r2d2_serve_jobs_submitted_total"), 1);

    // Kill backend 0 mid-run; its keys must fail over to backend 1.
    b0.kill();
    let spec0b = {
        // Another spec owned by the (now dead) backend 0.
        let ring = Ring::new(2);
        (1..=64u32)
            .map(|sms| {
                let mut s = JobSpec::new("BP", Size::Small, ModelSpec::Baseline);
                s.overrides.num_sms = Some(sms);
                s
            })
            .find(|s| ring.primary(s.content_hash()) == Some(0))
            .expect("some BP spec hashes onto backend 0")
    };
    let o = client::submit(&addr, &spec0b, true, T).expect("failover submit");
    assert_eq!(o.status, 200, "{:?}", o.body);
    assert_eq!(o.job_status(), Some("done"));
    assert_eq!(
        b1.metric("r2d2_serve_jobs_submitted_total"),
        1,
        "the orphaned key must land on the surviving backend"
    );
    let text = client::metrics(&addr, T).unwrap();
    assert!(
        parse_metric(&text, "dispatch_failover_total").unwrap() >= 1,
        "failover not counted:\n{text}"
    );
    assert_eq!(parse_metric(&text, "dispatch_backends_live"), Some(1));

    // The failed-over job is still reachable by id through the dispatcher,
    // even though its ring primary is dead (404 fan-out).
    let g = client::job_status(&addr, &spec0b.hash_hex(), T).unwrap();
    assert_eq!((g.status, g.job_status()), (200, Some("done")));

    // Kill the survivor: the fleet is gone, submissions answer 503 with
    // the schema code and a Retry-After hint.
    b1.kill();
    let o = client::submit(&addr, &spec0, false, T).expect("dispatcher still answers");
    assert_eq!(o.status, 503, "{:?}", o.body);
    let err = o.api_error().expect("unified error schema");
    assert_eq!(err.code, "no-backend-live");
    assert_eq!(err.retry_after_s, Some(1));
    assert_eq!(o.retry_after, Some(1), "Retry-After header present");
    // Fleet health reflects it (probes run every 100ms).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (code, _) = client::healthz(&addr, T).unwrap();
        if code == 503 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "healthz never flipped"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    stop_dispatcher(&handle, join);
}

#[test]
fn relayed_progress_stream_is_byte_identical_to_direct() {
    let b0 = Backend::start("relay", 0);
    let b1 = Backend::start("relay", 1);
    let (addr, handle, join) = start_dispatcher(&[&b0, &b1]);

    let spec = JobSpec::new("NN", Size::Small, ModelSpec::Baseline);
    let o = client::submit(&addr, &spec, true, T).unwrap();
    assert_eq!(o.status, 200, "{:?}", o.body);
    let id = spec.hash_hex();

    // A completed job's stream replays deterministically, so the relayed
    // body must match a direct connection to the owning backend byte for
    // byte.
    let collect = |addr: &str| -> (u16, Vec<u8>) {
        let mut bytes = Vec::new();
        let (status, _) = r2d2_serve::http::client_stream(
            addr,
            "GET",
            &format!("/v1/jobs/{id}/progress"),
            T,
            &mut |chunk| {
                bytes.extend_from_slice(chunk);
                Ok(())
            },
        )
        .expect("stream");
        (status, bytes)
    };
    let (via_status, via_dispatch) = collect(&addr);
    assert_eq!(via_status, 200);
    // The owning backend is whichever one saw the submission.
    let owner = if b0.metric("r2d2_serve_jobs_submitted_total") > 0 {
        &b0
    } else {
        &b1
    };
    let (direct_status, direct) = collect(&owner.addr);
    assert_eq!(direct_status, 200);
    assert!(!direct.is_empty());
    assert_eq!(
        via_dispatch, direct,
        "relayed NDJSON differs from the direct stream"
    );

    // Streaming error paths carry the schema through the relay too.
    let miss = client::watch(&addr, "0000000000000000", T, &mut |v| {
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("code"))
                .and_then(|c| c.as_str()),
            Some("unknown-job")
        );
    })
    .expect("stream completes");
    assert_eq!(miss, 404);

    stop_dispatcher(&handle, join);
}
