//! Experiment harness shared by the per-figure bench targets.
//!
//! Every table and figure in the paper's evaluation (Sec. 5) has a bench
//! target under `benches/` (registered with `harness = false`), each of which
//! prints the paper-style rows and writes a CSV under `results/`. Run them
//! all with `cargo bench`, or one with e.g.
//! `cargo bench --bench fig13_speedup`.
//!
//! Set `R2D2_SIZE=small` to use test-sized inputs (CI smoke runs).

use r2d2_core::machine::RunResult;
use r2d2_core::transform::make_launch;
use r2d2_energy::{EnergyBreakdown, EnergyModel};
use r2d2_sim::{simulate, BaselineFilter, GpuConfig, IssueFilter, Stats};
use r2d2_workloads::{Size, Workload};
use std::fmt::Write as _;
use std::path::PathBuf;

/// The machine models of Figs. 12/13/16.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// Table 1 baseline GPU (with its stock scalar pipeline).
    Baseline,
    /// Decoupled Affine Computation (optimistic).
    Dac,
    /// DARSIE (optimistic).
    Darsie,
    /// DARSIE + generalized scalar pipeline.
    DarsieScalar,
    /// This paper: R2D2.
    R2d2,
}

impl Model {
    /// All models, baseline first.
    pub const ALL: [Model; 5] =
        [Model::Baseline, Model::Dac, Model::Darsie, Model::DarsieScalar, Model::R2d2];

    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            Model::Baseline => "Baseline",
            Model::Dac => "DAC",
            Model::Darsie => "DARSIE",
            Model::DarsieScalar => "DARSIE+S",
            Model::R2d2 => "R2D2",
        }
    }

    fn filter(self) -> Box<dyn IssueFilter> {
        match self {
            Model::Baseline | Model::R2d2 => Box::new(BaselineFilter),
            Model::Dac => Box::new(r2d2_baselines::DacFilter::new()),
            Model::Darsie => Box::new(r2d2_baselines::DarsieFilter::new()),
            Model::DarsieScalar => Box::new(r2d2_baselines::DarsieScalarFilter::new()),
        }
    }
}

/// Workload size selected by `R2D2_SIZE` (default: full).
pub fn size_from_env() -> Size {
    match std::env::var("R2D2_SIZE").as_deref() {
        Ok("small") | Ok("Small") | Ok("SMALL") => Size::Small,
        _ => Size::Full,
    }
}

/// Run every launch of a workload under `model` on a fresh copy of its
/// memory; returns accumulated stats and the energy breakdown.
///
/// # Panics
///
/// Panics if the simulator reports an error (the zoo is validated by tests).
pub fn run_model(cfg: &GpuConfig, w: &Workload, model: Model) -> RunResult {
    let mut gmem = w.gmem.clone();
    let mut stats = Stats::default();
    let mut used_r2d2 = false;
    for l in &w.launches {
        let s = match model {
            Model::R2d2 => {
                let (launch, used) = make_launch(cfg, &l.kernel, l.grid, l.block, l.params.clone());
                used_r2d2 |= used;
                simulate(cfg, &launch, &mut gmem, &mut BaselineFilter)
            }
            _ => {
                let mut f = model.filter();
                simulate(cfg, l, &mut gmem, f.as_mut())
            }
        }
        .unwrap_or_else(|e| panic!("{}/{:?}: {e}", w.name, model));
        stats.merge_sequential(&s);
    }
    let energy = EnergyModel::volta().breakdown(&stats.events);
    RunResult { stats, energy, used_r2d2 }
}

/// Run a workload under R2D2 with explicit generator options (ablations).
/// Falls back to the original kernel when nothing is decoupled.
pub fn run_r2d2_with(
    cfg: &GpuConfig,
    w: &Workload,
    opts: &r2d2_core::GenOptions,
) -> RunResult {
    let mut gmem = w.gmem.clone();
    let mut stats = Stats::default();
    let mut used = false;
    for l in &w.launches {
        let r2 = r2d2_core::transform_with(&l.kernel, opts);
        let s = if r2.meta.has_linear() {
            used = true;
            let mut launch =
                r2d2_sim::Launch::new(r2.kernel, l.grid, l.block, l.params.clone());
            launch.meta = Some(r2.meta);
            simulate(cfg, &launch, &mut gmem, &mut BaselineFilter)
        } else {
            simulate(cfg, l, &mut gmem, &mut BaselineFilter)
        }
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        stats.merge_sequential(&s);
    }
    let energy = EnergyModel::volta().breakdown(&stats.events);
    RunResult { stats, energy, used_r2d2: used }
}

/// One workload's results under every model (Figs. 12/13/16 share this).
pub struct ComparisonRow {
    /// Table 2 abbreviation.
    pub name: &'static str,
    /// Results indexed like [`Model::ALL`].
    pub runs: Vec<RunResult>,
}

/// Run the whole zoo under every machine model.
pub fn comparison_rows(cfg: &GpuConfig, size: Size) -> Vec<ComparisonRow> {
    r2d2_workloads::NAMES
        .iter()
        .map(|(name, _)| {
            let w = r2d2_workloads::build(name, size).unwrap();
            let runs = Model::ALL.iter().map(|m| run_model(cfg, &w, *m)).collect();
            eprintln!("  [{name} done]");
            ComparisonRow { name, runs }
        })
        .collect()
}

/// Geometric mean of a slice of positive numbers.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// A simple fixed-width table printer + CSV writer.
pub struct Report {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Start a report with a title and column names.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Report {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render the table to stdout and write `results/<file>.csv`.
    ///
    /// # Panics
    ///
    /// Panics if the results directory cannot be written.
    pub fn finish(&self, file: &str) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for r in &self.rows {
            let _ = writeln!(out, "{}", line(r, &widths));
        }
        print!("{out}");
        // CSV
        let dir = results_dir();
        std::fs::create_dir_all(&dir).expect("create results dir");
        let mut csv = String::new();
        let _ = writeln!(csv, "{}", self.header.join(","));
        for r in &self.rows {
            let _ = writeln!(csv, "{}", r.join(","));
        }
        std::fs::write(dir.join(format!("{file}.csv")), csv).expect("write csv");
        println!("[written results/{file}.csv]");
    }
}

/// The `results/` directory at the workspace root.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Percent reduction of `v` vs `base`.
pub fn pct_reduction(base: u64, v: u64) -> f64 {
    if base == 0 {
        0.0
    } else {
        100.0 * (base as f64 - v as f64) / base as f64
    }
}

/// Format helpers shared by the figure targets.
pub fn fmt_pct(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a speedup `x.xx`.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}")
}

/// Total energy helper.
pub fn total_pj(e: &EnergyBreakdown) -> f64 {
    e.total_pj()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn pct_reduction_basics() {
        assert_eq!(pct_reduction(100, 72), 28.0);
        assert_eq!(pct_reduction(0, 5), 0.0);
    }

    #[test]
    fn run_model_smoke() {
        let cfg = GpuConfig { num_sms: 4, ..Default::default() };
        let w = r2d2_workloads::build("NN", Size::Small).unwrap();
        let base = run_model(&cfg, &w, Model::Baseline);
        let r2 = run_model(&cfg, &w, Model::R2d2);
        assert!(base.stats.cycles > 0);
        assert!(r2.stats.warp_instrs < base.stats.warp_instrs);
    }
}
