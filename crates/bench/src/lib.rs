//! Reporting helpers shared by the per-figure bench targets.
//!
//! Every table and figure in the paper's evaluation (Sec. 5) has a bench
//! target under `benches/` (registered with `harness = false`), each of which
//! prints the paper-style rows and writes a CSV under `results/`. Run them
//! all with `cargo bench`, or one with e.g.
//! `cargo bench --bench fig13_speedup`.
//!
//! The simulations themselves go through [`r2d2_harness`]: each target
//! builds its job set from [`r2d2_harness::sets`] and submits it to
//! [`r2d2_harness::run_jobs`], which parallelizes across worker threads and
//! answers repeated jobs from the content-addressed cache under
//! `results/cache/` — re-running a figure whose jobs are cached performs
//! zero simulations (the summary line reports the split). `r2d2 sweep` uses
//! the same job sets, so the CLI and the bench targets share cache entries.
//!
//! Knobs (environment): `R2D2_SIZE=small` for test-sized inputs,
//! `R2D2_JOBS=N` to bound worker threads, `R2D2_NO_CACHE=1` to force
//! re-simulation, `R2D2_RESULTS=dir` to relocate `results/`.

use std::fmt::Write as _;
use std::path::PathBuf;

pub use r2d2_harness::size_from_env;
use r2d2_harness::{run_jobs, JobSpec, RunOptions, RunSummary};

/// Run a figure's job set with options taken from the environment
/// (`R2D2_JOBS`, `R2D2_NO_CACHE`) and export the unified CSV afterwards.
pub fn run_figure_jobs(specs: &[JobSpec]) -> RunSummary {
    let opts = RunOptions {
        jobs: std::env::var("R2D2_JOBS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
        use_cache: std::env::var_os("R2D2_NO_CACHE").is_none(),
        verbose: true,
    };
    let summary = run_jobs(specs, &opts);
    let cache = r2d2_harness::Cache::open_default();
    if let Err(e) = r2d2_harness::export_csv(&cache, &r2d2_harness::default_csv_path()) {
        eprintln!("warning: could not write run_records.csv: {e}");
    }
    summary
}

/// Geometric mean of a slice of positive numbers.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// A simple fixed-width table printer + CSV writer.
pub struct Report {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Start a report with a title and column names.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Report {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render the table to stdout and write `results/<file>.csv`.
    ///
    /// # Panics
    ///
    /// Panics if the results directory cannot be written.
    pub fn finish(&self, file: &str) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for r in &self.rows {
            let _ = writeln!(out, "{}", line(r, &widths));
        }
        print!("{out}");
        // CSV
        let dir = results_dir();
        std::fs::create_dir_all(&dir).expect("create results dir");
        let mut csv = String::new();
        let _ = writeln!(csv, "{}", self.header.join(","));
        for r in &self.rows {
            let _ = writeln!(csv, "{}", r.join(","));
        }
        std::fs::write(dir.join(format!("{file}.csv")), csv).expect("write csv");
        println!("[written results/{file}.csv]");
    }
}

/// The `results/` directory at the workspace root (`R2D2_RESULTS` overrides).
pub fn results_dir() -> PathBuf {
    r2d2_harness::results_dir()
}

/// Percent reduction of `v` vs `base`.
pub fn pct_reduction(base: u64, v: u64) -> f64 {
    if base == 0 {
        0.0
    } else {
        100.0 * (base as f64 - v as f64) / base as f64
    }
}

/// Format helpers shared by the figure targets.
pub fn fmt_pct(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a speedup `x.xx`.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn pct_reduction_basics() {
        assert_eq!(pct_reduction(100, 72), 28.0);
        assert_eq!(pct_reduction(0, 5), 0.0);
    }
}
