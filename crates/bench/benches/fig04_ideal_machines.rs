//! Paper Fig. 4: dynamic thread-instruction reduction of the *ideal*
//! machines — WP (redundancy within a warp), TB (within a thread block) and
//! LN (linearity of SIMT). Paper averages: WP 27%, TB 22%, LN 33%, with LN
//! above both on most benchmarks.

use r2d2_bench::{fmt_pct, run_figure_jobs, size_from_env, Report};

fn main() {
    let size = size_from_env();
    let specs = r2d2_harness::sets::fig04(size);
    let summary = run_figure_jobs(&specs);
    let mut rep = Report::new(
        "Fig. 4 — ideal machine dynamic thread-instruction reduction (%)",
        &["bench", "WP", "TB", "LN"],
    );
    let mut sums = [0.0f64; 3];
    let mut n = 0.0;
    for (spec, rec) in specs.iter().zip(&summary.records) {
        let counts = rec.ideal.expect("ideals job records counts");
        let (wp, tb, ln) = counts.reductions();
        sums[0] += wp;
        sums[1] += tb;
        sums[2] += ln;
        n += 1.0;
        rep.row(vec![
            spec.workload.clone(),
            fmt_pct(wp),
            fmt_pct(tb),
            fmt_pct(ln),
        ]);
    }
    rep.row(vec![
        "AVG".to_string(),
        fmt_pct(sums[0] / n),
        fmt_pct(sums[1] / n),
        fmt_pct(sums[2] / n),
    ]);
    rep.finish("fig04_ideal_machines");
    println!("paper: WP 27%, TB 22%, LN 33% (averages)");
}
