//! Paper Fig. 4: dynamic thread-instruction reduction of the *ideal*
//! machines — WP (redundancy within a warp), TB (within a thread block) and
//! LN (linearity of SIMT). Paper averages: WP 27%, TB 22%, LN 33%, with LN
//! above both on most benchmarks.

use r2d2_baselines::measure_ideals;
use r2d2_bench::{fmt_pct, size_from_env, Report};
use r2d2_sim::functional;

fn main() {
    let size = size_from_env();
    let mut rep = Report::new(
        "Fig. 4 — ideal machine dynamic thread-instruction reduction (%)",
        &["bench", "WP", "TB", "LN"],
    );
    let mut sums = [0.0f64; 3];
    let mut n = 0.0;
    for (name, _) in r2d2_workloads::NAMES {
        let w = r2d2_workloads::build(name, size).unwrap();
        let mut gmem = w.gmem.clone();
        let mut total = r2d2_baselines::IdealCounts::default();
        for l in &w.launches {
            let c = measure_ideals(l, &mut gmem).unwrap();
            total.baseline += c.baseline;
            total.wp += c.wp;
            total.tb += c.tb;
            total.ln += c.ln;
            total.baseline_warp += c.baseline_warp;
        }
        // keep memory state moving forward between launches
        let _ = functional::FuncStats::default();
        let (wp, tb, ln) = total.reductions();
        sums[0] += wp;
        sums[1] += tb;
        sums[2] += ln;
        n += 1.0;
        rep.row(vec![name.to_string(), fmt_pct(wp), fmt_pct(tb), fmt_pct(ln)]);
        eprintln!("  [{name} done]");
    }
    rep.row(vec![
        "AVG".to_string(),
        fmt_pct(sums[0] / n),
        fmt_pct(sums[1] / n),
        fmt_pct(sums[2] / n),
    ]);
    rep.finish("fig04_ideal_machines");
    println!("paper: WP 27%, TB 22%, LN 33% (averages)");
}
