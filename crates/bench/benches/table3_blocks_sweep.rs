//! Paper Table 3: backprop blocks-per-grid sensitivity (BP_04 .. BP_64 —
//! 2^4 to 2^6.. input nodes; the paper's row labels). Instruction reduction
//! should stay ~flat (38-40%) and speedup ~1.35-1.36x across sizes.

use r2d2_bench::{fmt_pct, fmt_x, pct_reduction, run_model, Model, Report};
use r2d2_sim::GpuConfig;

fn main() {
    let cfg = GpuConfig::default();
    let mut rep = Report::new(
        "Table 3 — backprop blocks-per-grid sensitivity",
        &["config", "blocks", "instr_reduction_%", "speedup"],
    );
    for log_nodes in [4u32, 8, 10, 12, 14] {
        let w = r2d2_workloads::backprop_scaled(log_nodes);
        let base = run_model(&cfg, &w, Model::Baseline);
        let r2 = run_model(&cfg, &w, Model::R2d2);
        let red = pct_reduction(base.stats.warp_instrs, r2.stats.warp_instrs);
        let sp = base.stats.cycles as f64 / r2.stats.cycles.max(1) as f64;
        let blocks: u64 = w.launches.iter().map(|l| l.num_blocks()).sum();
        rep.row(vec![format!("BP_{log_nodes:02}"), blocks.to_string(), fmt_pct(red), fmt_x(sp)]);
        eprintln!("  [BP_{log_nodes:02} done]");
    }
    rep.finish("table3_blocks_sweep");
    println!("paper: reduction 38.3-39.7%, speedup 1.35-1.36x, both ~flat in grid size");
}
