//! Paper Table 3: backprop blocks-per-grid sensitivity (BP_04 .. BP_64 —
//! 2^4 to 2^6.. input nodes; the paper's row labels). Instruction reduction
//! should stay ~flat (38-40%) and speedup ~1.35-1.36x across sizes.

use r2d2_bench::{fmt_pct, fmt_x, pct_reduction, run_figure_jobs, Report};
use r2d2_harness::sets::TABLE3_LOGS;

fn main() {
    let specs = r2d2_harness::sets::table3();
    let summary = run_figure_jobs(&specs);
    let mut rep = Report::new(
        "Table 3 — backprop blocks-per-grid sensitivity",
        &["config", "blocks", "instr_reduction_%", "speedup"],
    );
    for (i, log_nodes) in TABLE3_LOGS.iter().enumerate() {
        let base = &summary.records[i * 2];
        let r2 = &summary.records[i * 2 + 1];
        let red = pct_reduction(base.stats.warp_instrs, r2.stats.warp_instrs);
        let sp = base.stats.cycles as f64 / r2.stats.cycles.max(1) as f64;
        // Block counts come from the workload shape, not the simulation.
        let w = r2d2_workloads::backprop_scaled(*log_nodes);
        let blocks: u64 = w.launches.iter().map(|l| l.num_blocks()).sum();
        rep.row(vec![
            format!("BP_{log_nodes:02}"),
            blocks.to_string(),
            fmt_pct(red),
            fmt_x(sp),
        ]);
    }
    rep.finish("table3_blocks_sweep");
    println!("paper: reduction 38.3-39.7%, speedup 1.35-1.36x, both ~flat in grid size");
}
