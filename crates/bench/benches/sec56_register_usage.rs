//! Paper Sec. 5.6: register-usage accounting. For the register-bounded STC
//! kernel (and the modern register-hungry workloads), show the per-kernel
//! register classes R2D2 allocates and verify occupancy never drops (the
//! Sec. 4.4 gate would otherwise fall back to the original binary).

use r2d2_bench::Report;
use r2d2_core::transform::transform;
use r2d2_isa::Cfg;
use r2d2_sim::{blocks_per_sm, phys_regs_estimate, GpuConfig, Launch};

fn main() {
    let cfg = GpuConfig::default();
    let size = r2d2_bench::size_from_env();
    let mut rep = Report::new(
        "Sec. 5.6 — register usage and occupancy (per first kernel of each workload)",
        &[
            "bench", "kernel", "gp_regs", "r2d2_gp", "n_cr", "n_tr", "n_lr", "occ_base",
            "occ_r2d2", "fallback",
        ],
    );
    for name in [
        "STC", "CCMP", "FFT", "KCR", "RES", "SSSP", "VGG", "BP", "SGM", "LUD",
    ] {
        let w = r2d2_workloads::build(name, size).unwrap();
        let l = &w.launches[0];
        let r2 = transform(&l.kernel);
        let base_regs = phys_regs_estimate(&l.kernel, &Cfg::build(&l.kernel));
        let r2_regs = phys_regs_estimate(&r2.kernel, &Cfg::build(&r2.kernel));
        let occ_base = blocks_per_sm(&cfg, l, base_regs);
        let mut l2 = Launch::new(r2.kernel.clone(), l.grid, l.block, l.params.clone());
        l2.meta = Some(r2.meta.clone());
        let occ_r2 = blocks_per_sm(&cfg, &l2, r2_regs);
        rep.row(vec![
            name.to_string(),
            l.kernel.name.clone(),
            base_regs.to_string(),
            r2_regs.to_string(),
            r2.report.n_cr.to_string(),
            r2.report.n_tr.to_string(),
            r2.report.n_lr.to_string(),
            occ_base.to_string(),
            occ_r2.to_string(),
            (occ_r2 < occ_base).to_string(),
        ]);
    }
    rep.finish("sec56_register_usage");
    println!(
        "paper: STC's 128-thread kernel keeps full occupancy; linear registers\n\
         (tr/br/cr) fit in the space freed by replaced general-purpose registers"
    );
}
