//! Paper Fig. 12: percentage of dynamic warp-instruction reduction vs. the
//! baseline GPU for DAC, DARSIE, DARSIE+Scalar and R2D2 over the full zoo.
//! Paper averages: DAC 20%, DARSIE 18%, DARSIE+Scalar 19%, R2D2 28%.

use r2d2_bench::{fmt_pct, pct_reduction, run_figure_jobs, size_from_env, Report};
use r2d2_harness::sets::COMPARISON_MODELS;

fn main() {
    let specs = r2d2_harness::sets::comparison(size_from_env());
    let summary = run_figure_jobs(&specs);
    let nm = COMPARISON_MODELS.len();
    let mut rep = Report::new(
        "Fig. 12 — dynamic warp instruction reduction vs baseline (%)",
        &["bench", "DAC", "DARSIE", "DARSIE+S", "R2D2"],
    );
    let mut sums = [0.0f64; 4];
    for (w, (name, _)) in r2d2_workloads::NAMES.iter().enumerate() {
        let runs = &summary.records[w * nm..(w + 1) * nm];
        let base = runs[0].stats.warp_instrs;
        let reds: Vec<f64> = (1..nm)
            .map(|m| pct_reduction(base, runs[m].stats.warp_instrs))
            .collect();
        for (s, v) in sums.iter_mut().zip(&reds) {
            *s += v;
        }
        rep.row(
            std::iter::once(name.to_string())
                .chain(reds.iter().map(|v| fmt_pct(*v)))
                .collect(),
        );
    }
    let n = r2d2_workloads::NAMES.len() as f64;
    rep.row(
        std::iter::once("AVG".to_string())
            .chain(sums.iter().map(|s| fmt_pct(s / n)))
            .collect(),
    );
    rep.finish("fig12_instruction_reduction");
    println!("paper: DAC 20%, DARSIE 18%, DARSIE+S 19%, R2D2 28% (averages)");
}
