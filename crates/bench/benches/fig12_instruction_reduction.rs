//! Paper Fig. 12: percentage of dynamic warp-instruction reduction vs. the
//! baseline GPU for DAC, DARSIE, DARSIE+Scalar and R2D2 over the full zoo.
//! Paper averages: DAC 20%, DARSIE 18%, DARSIE+Scalar 19%, R2D2 28%.

use r2d2_bench::{comparison_rows, fmt_pct, pct_reduction, size_from_env, Model, Report};
use r2d2_sim::GpuConfig;

fn main() {
    let cfg = GpuConfig::default();
    let rows = comparison_rows(&cfg, size_from_env());
    let mut rep = Report::new(
        "Fig. 12 — dynamic warp instruction reduction vs baseline (%)",
        &["bench", "DAC", "DARSIE", "DARSIE+S", "R2D2"],
    );
    let mut sums = [0.0f64; 4];
    for r in &rows {
        let base = r.runs[0].stats.warp_instrs;
        let reds: Vec<f64> = (1..Model::ALL.len())
            .map(|m| pct_reduction(base, r.runs[m].stats.warp_instrs))
            .collect();
        for (s, v) in sums.iter_mut().zip(&reds) {
            *s += v;
        }
        rep.row(
            std::iter::once(r.name.to_string())
                .chain(reds.iter().map(|v| fmt_pct(*v)))
                .collect(),
        );
    }
    let n = rows.len() as f64;
    rep.row(
        std::iter::once("AVG".to_string()).chain(sums.iter().map(|s| fmt_pct(s / n))).collect(),
    );
    rep.finish("fig12_instruction_reduction");
    println!(
        "paper: DAC 20%, DARSIE 18%, DARSIE+S 19%, R2D2 28% (averages)"
    );
}
