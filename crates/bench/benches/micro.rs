//! Criterion micro-benchmarks of the reproduction's own machinery: analyzer
//! throughput, end-to-end transform, functional and timing simulation rates.

use criterion::{criterion_group, criterion_main, Criterion};
use r2d2_core::analyzer::analyze;
use r2d2_core::transform::transform;
use r2d2_isa::{Kernel, KernelBuilder, Ty};
use r2d2_sim::{functional, simulate, BaselineFilter, Dim3, GlobalMem, GpuConfig, Launch};

fn saxpy_like() -> Kernel {
    let mut b = KernelBuilder::new("saxpy", 3);
    let i = b.global_tid_x();
    let off = b.shl_imm_wide(i, 2);
    let px = b.ld_param(0);
    let py = b.ld_param(1);
    let ax = b.add_wide(px, off);
    let ay = b.add_wide(py, off);
    let x = b.ld_global(Ty::F32, ax, 0);
    let y = b.ld_global(Ty::F32, ay, 0);
    let a = b.ld_param(2);
    let af = b.cvt(Ty::F32, a);
    let t = b.mad_ty(Ty::F32, af, x, y);
    b.st_global(Ty::F32, ay, 0, t);
    b.build()
}

fn bench_analyzer(c: &mut Criterion) {
    let k = saxpy_like();
    c.bench_function("analyze_saxpy", |b| b.iter(|| analyze(std::hint::black_box(&k))));
    c.bench_function("transform_saxpy", |b| b.iter(|| transform(std::hint::black_box(&k))));
}

fn bench_simulators(c: &mut Criterion) {
    let k = saxpy_like();
    let n = 32 * 128u64;
    c.bench_function("functional_saxpy_4k_threads", |b| {
        b.iter(|| {
            let mut g = GlobalMem::new();
            let x = g.alloc(n * 4);
            let y = g.alloc(n * 4);
            let launch = Launch::new(k.clone(), Dim3::d1(32), Dim3::d1(128), vec![x, y, 3]);
            functional::run(&launch, &mut g, 10_000_000, None).unwrap()
        })
    });
    let cfg = GpuConfig { num_sms: 8, ..Default::default() };
    c.bench_function("timing_saxpy_4k_threads", |b| {
        b.iter(|| {
            let mut g = GlobalMem::new();
            let x = g.alloc(n * 4);
            let y = g.alloc(n * 4);
            let launch = Launch::new(k.clone(), Dim3::d1(32), Dim3::d1(128), vec![x, y, 3]);
            simulate(&cfg, &launch, &mut g, &mut BaselineFilter).unwrap()
        })
    });
}

criterion_group!(benches, bench_analyzer, bench_simulators);
criterion_main!(benches);
