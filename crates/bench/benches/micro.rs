//! Micro-benchmarks of the reproduction's own machinery: analyzer
//! throughput, end-to-end transform, functional and timing simulation rates.
//!
//! Hand-rolled timing loop (median-of-samples) instead of criterion so the
//! workspace builds with zero external dependencies. Not statistically
//! rigorous — it answers "did I make the hot path 2x slower", not "is this
//! 1% faster".

use r2d2_core::analyzer::analyze;
use r2d2_core::transform::transform;
use r2d2_isa::{Kernel, KernelBuilder, Ty};
use r2d2_sim::{functional, Dim3, GlobalMem, GpuConfig, Launch, LoopKind, SimSession, Stats};
use std::sync::Mutex;
use std::time::Instant;

/// Smoke mode (`R2D2_MICRO_SMOKE=1`): shrink sizes and deadlines so CI can
/// run every bench in seconds while still exercising the same code paths.
fn smoke() -> bool {
    std::env::var("R2D2_MICRO_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Collected `(metric, value)` pairs, all higher-is-better, dumped as JSON
/// when `R2D2_BENCH_JSON=<path>` is set. `scripts/check_bench_baseline.py`
/// diffs that dump against the committed `results/bench_baseline.json` to
/// gate throughput regressions in CI.
static METRICS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

fn record_metric(name: &str, value: f64) {
    METRICS.lock().unwrap().push((name.to_string(), value));
}

fn write_metrics_json(path: &str) {
    use r2d2_harness::json::{int, num, obj, Value};
    let metrics = METRICS.lock().unwrap();
    let fields: Vec<(&str, Value)> = metrics.iter().map(|(k, v)| (k.as_str(), num(*v))).collect();
    // Recorded so the regression gate can tell whether multi-threaded
    // (`*_t8_*`) metrics were measured with real parallelism: on a
    // single-core host they mostly measure barrier overhead and are
    // not comparable against a multi-core baseline (or vice versa).
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let doc = obj(vec![
        ("schema", int(1)),
        ("smoke", Value::Bool(smoke())),
        ("host_parallelism", int(host_parallelism as u64)),
        ("metrics", obj(fields)),
    ]);
    // Cargo runs bench binaries with cwd = the package dir (crates/bench),
    // but callers (CI, update_bench_baseline.sh) pass workspace-relative
    // paths like `target/bench_current.json` — anchor those at the
    // workspace root so the file lands where the gate script looks.
    let mut dest = std::path::PathBuf::from(path);
    if dest.is_relative() {
        let workspace = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root");
        dest = workspace.join(dest);
    }
    if let Some(parent) = dest.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&dest, doc.to_json()).expect("write bench metrics");
    println!("[bench metrics written to {}]", dest.display());
}

fn saxpy_like() -> Kernel {
    let mut b = KernelBuilder::new("saxpy", 3);
    let i = b.global_tid_x();
    let off = b.shl_imm_wide(i, 2);
    let px = b.ld_param(0);
    let py = b.ld_param(1);
    let ax = b.add_wide(px, off);
    let ay = b.add_wide(py, off);
    let x = b.ld_global(Ty::F32, ax, 0);
    let y = b.ld_global(Ty::F32, ay, 0);
    let a = b.ld_param(2);
    let af = b.cvt(Ty::F32, a);
    let t = b.mad_ty(Ty::F32, af, x, y);
    b.st_global(Ty::F32, ay, 0, t);
    b.build()
}

/// Run `f` in batches until ~0.5 s elapses (min 4 samples; ~0.1 s in smoke
/// mode), report the median per-iteration time over the collected batch
/// samples, and return it in seconds.
fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> f64 {
    // Warmup.
    for _ in 0..3 {
        std::hint::black_box(f());
    }
    let mut samples: Vec<f64> = Vec::new();
    let batch = 4u32;
    let budget_ms = if smoke() { 100 } else { 500 };
    let deadline = Instant::now() + std::time::Duration::from_millis(budget_ms);
    while Instant::now() < deadline || samples.len() < 4 {
        let t0 = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        samples.push(t0.elapsed().as_secs_f64() / f64::from(batch));
        if samples.len() >= 256 {
            break;
        }
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let unit = if median >= 1e-3 {
        format!("{:.3} ms", median * 1e3)
    } else {
        format!("{:.1} us", median * 1e6)
    };
    println!(
        "{name:<32} {unit:>12}/iter  ({} samples x {batch})",
        samples.len()
    );
    record_metric(&format!("{name}_iters_per_s"), 1.0 / median);
    median
}

/// DRAM-bound kernel: a serial chain of `rounds` cold loads, each touching
/// its own 128-byte line and feeding (a zero from the zero-initialized
/// buffer) into the next address. With one warp per scheduler, every warp
/// spends ~a full DRAM latency stalled per round — the cycle-skipping sweet
/// spot.
fn dram_bound_kernel(rounds: u32, nthreads: u32) -> Kernel {
    let mut b = KernelBuilder::new("dram_bound", 2);
    let i = b.global_tid_x();
    let p = b.ld_param(0);
    let mut v = b.imm32(0);
    for r in 0..rounds {
        let dep = b.add_ty(Ty::B32, i, v); // serializes on the previous load
        let ri = b.imm32(r as i32);
        let nt = b.imm32(nthreads as i32);
        let j = b.mad_ty(Ty::B32, ri, nt, dep);
        let loff = b.shl_imm_wide(j, 7); // one fresh L1 line per round
        let a = b.add_wide(p, loff);
        v = b.ld_global(Ty::B32, a, 0);
    }
    let q = b.ld_param(1);
    let soff = b.shl_imm_wide(i, 2);
    let sa = b.add_wide(q, soff);
    b.st_global(Ty::B32, sa, 0, v);
    b.build()
}

/// ALU-bound kernel: a long dependent FP32 chain with one store at the end —
/// almost every cycle issues, so cycle skipping has nothing to skip.
fn alu_bound_kernel() -> Kernel {
    let mut b = KernelBuilder::new("alu_bound", 1);
    let i = b.global_tid_x();
    let f = b.cvt(Ty::F32, i);
    let mut acc = f;
    for _ in 0..64 {
        acc = b.mad_ty(Ty::F32, acc, f, f);
    }
    let off = b.shl_imm_wide(i, 2);
    let p = b.ld_param(0);
    let a = b.add_wide(p, off);
    b.st_global(Ty::F32, a, 0, acc);
    b.build()
}

/// Measure simulator throughput for one kernel under one loop kind: median
/// wall seconds per run, printed as simulated cycles and warp instructions
/// per wall-second.
fn sim_throughput(
    tag: &str,
    kernel: &Kernel,
    grid: u32,
    block: u32,
    bufs: &[u64],
    kind: LoopKind,
    threads: u32,
) -> (f64, Stats) {
    let cfg = GpuConfig::default()
        .with_num_sms(8)
        .with_loop_kind(kind)
        .with_threads(threads);
    let run = || {
        let mut g = GlobalMem::new();
        let params: Vec<u64> = bufs.iter().map(|&b| g.alloc(b)).collect();
        let launch = Launch::new(kernel.clone(), Dim3::d1(grid), Dim3::d1(block), params);
        SimSession::new(&cfg).run(&launch, &mut g).unwrap()
    };
    let stats = run();
    let kname = match kind {
        LoopKind::Lockstep => "lockstep",
        LoopKind::EventDriven => "event",
    };
    // threads = 1 keeps the pre-sharding metric names so baselines carry over.
    let bname = if threads == 1 {
        format!("sim_{tag}_{kname}")
    } else {
        format!("sim_{tag}_{kname}_t{threads}")
    };
    let med = bench(&bname, run);
    println!(
        "{:<32} {:>10.1}M sim-cycles/s  {:>8.2}M warp-instrs/s",
        format!("  ({} cycles={})", kname, stats.cycles),
        stats.cycles as f64 / med / 1e6,
        stats.warp_instrs as f64 / med / 1e6,
    );
    record_metric(&format!("{bname}_cycles_per_s"), stats.cycles as f64 / med);
    (med, stats)
}

/// The DRAM-bound vs ALU-bound throughput comparison between the two loop
/// kinds (the headline numbers for the event-driven rewrite).
fn sim_throughput_suite() {
    // DRAM case: occupancy stays fixed at one warp per scheduler (grid 16 x
    // block 64 over 8 SMs); full mode deepens the stall chain instead of
    // widening the machine, which would shift time into functional execution
    // (identical under both loops) and hide the loop overhead being measured.
    let rounds = if smoke() { 4 } else { 16 };
    let (dgrid, dblock) = (16u32, 64u32);
    let dn = u64::from(dgrid * dblock);
    let ascale = if smoke() { 1 } else { 4 };
    let (agrid, ablock) = (16 * ascale, 128u32);
    let an = u64::from(agrid * ablock);
    let cases = [
        // Low occupancy + serial cold misses: long fully-idle stalls.
        (
            "dram_bound",
            dram_bound_kernel(rounds, dgrid * dblock),
            dgrid,
            dblock,
            vec![u64::from(rounds) * dn * 128, dn * 4],
        ),
        // Dense dependent ALU work: near-full issue slots, nothing to skip.
        ("alu_bound", alu_bound_kernel(), agrid, ablock, vec![an * 4]),
    ];
    for (tag, k, grid, block, bufs) in cases {
        let (t_ev, s_ev) = sim_throughput(tag, &k, grid, block, &bufs, LoopKind::EventDriven, 1);
        let (t_ls, s_ls) = sim_throughput(tag, &k, grid, block, &bufs, LoopKind::Lockstep, 1);
        assert_eq!(s_ev, s_ls, "{tag}: loop kinds must report identical stats");
        println!("{tag:<32} event-driven speedup: {:.2}x\n", t_ls / t_ev);
        // Sharded run: publish a threads=8 throughput metric and hold the
        // bit-identical guarantee. Speedup over threads=1 tracks the host's
        // core count, so only the rate (not a ratio) is gated.
        let (t_p, s_p) = sim_throughput(tag, &k, grid, block, &bufs, LoopKind::EventDriven, 8);
        assert_eq!(s_ev, s_p, "{tag}: threads=8 must report identical stats");
        println!("{tag:<32} threads=8 speedup: {:.2}x\n", t_ev / t_p);
    }
}

fn main() {
    let k = saxpy_like();
    bench("analyze_saxpy", || analyze(std::hint::black_box(&k)));
    bench("transform_saxpy", || transform(std::hint::black_box(&k)));

    let n = 32 * 128u64;
    bench("functional_saxpy_4k_threads", || {
        let mut g = GlobalMem::new();
        let x = g.alloc(n * 4);
        let y = g.alloc(n * 4);
        let launch = Launch::new(k.clone(), Dim3::d1(32), Dim3::d1(128), vec![x, y, 3]);
        functional::run(&launch, &mut g, 10_000_000, None).unwrap()
    });
    let cfg = GpuConfig::default().with_num_sms(8);
    bench("timing_saxpy_4k_threads", || {
        let mut g = GlobalMem::new();
        let x = g.alloc(n * 4);
        let y = g.alloc(n * 4);
        let launch = Launch::new(k.clone(), Dim3::d1(32), Dim3::d1(128), vec![x, y, 3]);
        SimSession::new(&cfg).run(&launch, &mut g).unwrap()
    });

    sim_throughput_suite();

    if let Ok(path) = std::env::var("R2D2_BENCH_JSON") {
        if !path.is_empty() {
            write_metrics_json(&path);
        }
    }
}
