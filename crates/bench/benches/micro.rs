//! Micro-benchmarks of the reproduction's own machinery: analyzer
//! throughput, end-to-end transform, functional and timing simulation rates.
//!
//! Hand-rolled timing loop (median-of-samples) instead of criterion so the
//! workspace builds with zero external dependencies. Not statistically
//! rigorous — it answers "did I make the hot path 2x slower", not "is this
//! 1% faster".

use r2d2_core::analyzer::analyze;
use r2d2_core::transform::transform;
use r2d2_isa::{Kernel, KernelBuilder, Ty};
use r2d2_sim::{functional, simulate, BaselineFilter, Dim3, GlobalMem, GpuConfig, Launch};
use std::time::Instant;

fn saxpy_like() -> Kernel {
    let mut b = KernelBuilder::new("saxpy", 3);
    let i = b.global_tid_x();
    let off = b.shl_imm_wide(i, 2);
    let px = b.ld_param(0);
    let py = b.ld_param(1);
    let ax = b.add_wide(px, off);
    let ay = b.add_wide(py, off);
    let x = b.ld_global(Ty::F32, ax, 0);
    let y = b.ld_global(Ty::F32, ay, 0);
    let a = b.ld_param(2);
    let af = b.cvt(Ty::F32, a);
    let t = b.mad_ty(Ty::F32, af, x, y);
    b.st_global(Ty::F32, ay, 0, t);
    b.build()
}

/// Run `f` in batches until ~0.5 s elapses (min 4 samples), and report the
/// median per-iteration time over the collected batch samples.
fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    // Warmup.
    for _ in 0..3 {
        std::hint::black_box(f());
    }
    let mut samples: Vec<f64> = Vec::new();
    let batch = 4u32;
    let deadline = Instant::now() + std::time::Duration::from_millis(500);
    while Instant::now() < deadline || samples.len() < 4 {
        let t0 = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        samples.push(t0.elapsed().as_secs_f64() / f64::from(batch));
        if samples.len() >= 256 {
            break;
        }
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let unit = if median >= 1e-3 {
        format!("{:.3} ms", median * 1e3)
    } else {
        format!("{:.1} us", median * 1e6)
    };
    println!(
        "{name:<32} {unit:>12}/iter  ({} samples x {batch})",
        samples.len()
    );
}

fn main() {
    let k = saxpy_like();
    bench("analyze_saxpy", || analyze(std::hint::black_box(&k)));
    bench("transform_saxpy", || transform(std::hint::black_box(&k)));

    let n = 32 * 128u64;
    bench("functional_saxpy_4k_threads", || {
        let mut g = GlobalMem::new();
        let x = g.alloc(n * 4);
        let y = g.alloc(n * 4);
        let launch = Launch::new(k.clone(), Dim3::d1(32), Dim3::d1(128), vec![x, y, 3]);
        functional::run(&launch, &mut g, 10_000_000, None).unwrap()
    });
    let cfg = GpuConfig {
        num_sms: 8,
        ..Default::default()
    };
    bench("timing_saxpy_4k_threads", || {
        let mut g = GlobalMem::new();
        let x = g.alloc(n * 4);
        let y = g.alloc(n * 4);
        let launch = Launch::new(k.clone(), Dim3::d1(32), Dim3::d1(128), vec![x, y, 3]);
        simulate(&cfg, &launch, &mut g, &mut BaselineFilter).unwrap()
    });
}
