//! Paper Sec. 5.4: pipeline-latency tolerance study. The paper increases the
//! R2D2-specific latencies until average speedup drops 1%: 7 cycles for the
//! starting-PC-table fetch, 5 cycles for physical-register-ID computation
//! (the tr+br add is fixed at 4 cycles, like a CUDA-core add). We sweep the
//! same knobs on a representative subset.
//!
//! Job layout (see `r2d2_harness::sets::sec54`): one baseline per subset
//! workload — the latency knobs only touch decoupled blocks, so a single
//! baseline serves every sweep point — then the nominal R2D2 runs, then the
//! per-point R2D2 runs.

use r2d2_bench::{fmt_x, geomean, run_figure_jobs, size_from_env, Report};
use r2d2_harness::sets::{SEC54_POINTS, SEC54_SUBSET};

fn main() {
    let specs = r2d2_harness::sets::sec54(size_from_env());
    let summary = run_figure_jobs(&specs);
    let nw = SEC54_SUBSET.len();
    let base_cycles: Vec<f64> = summary.records[..nw]
        .iter()
        .map(|r| r.stats.cycles as f64)
        .collect();
    let geomean_speedup = |r2_records: &[r2d2_harness::RunRecord]| {
        let sp: Vec<f64> = base_cycles
            .iter()
            .zip(r2_records)
            .map(|(b, r)| b / r.stats.cycles.max(1) as f64)
            .collect();
        geomean(&sp)
    };
    let nominal = geomean_speedup(&summary.records[nw..2 * nw]);

    let mut rep = Report::new(
        "Sec. 5.4 — R2D2 latency tolerance (geomean speedup on subset)",
        &[
            "fetch_table",
            "regid_calc",
            "lr_add",
            "geomean_speedup",
            "drop_%",
        ],
    );
    for (p, (ft, rc, la)) in SEC54_POINTS.iter().enumerate() {
        let start = (2 + p) * nw;
        let s = geomean_speedup(&summary.records[start..start + nw]);
        let drop = 100.0 * (nominal - s) / nominal;
        rep.row(vec![
            ft.to_string(),
            rc.to_string(),
            la.to_string(),
            fmt_x(s),
            format!("{drop:.2}"),
        ]);
    }
    rep.finish("sec54_latency_study");
    println!("paper: ~1% speedup drop at 7-cycle fetch or 5-cycle reg-ID latency");
}
