//! Paper Sec. 5.4: pipeline-latency tolerance study. The paper increases the
//! R2D2-specific latencies until average speedup drops 1%: 7 cycles for the
//! starting-PC-table fetch, 5 cycles for physical-register-ID computation
//! (the tr+br add is fixed at 4 cycles, like a CUDA-core add). We sweep the
//! same knobs on a representative subset.

use r2d2_bench::{fmt_x, geomean, run_model, size_from_env, Model};
use r2d2_bench::Report;
use r2d2_sim::{GpuConfig, R2d2Latencies};

const SUBSET: &[&str] = &["BP", "NN", "2DC", "SRAD2", "KM", "CFD", "HSP", "FDT"];

fn geomean_speedup(cfg: &GpuConfig, size: r2d2_workloads::Size) -> f64 {
    let mut sp = Vec::new();
    for name in SUBSET {
        let w = r2d2_workloads::build(name, size).unwrap();
        let base = run_model(cfg, &w, Model::Baseline);
        let r2 = run_model(cfg, &w, Model::R2d2);
        sp.push(base.stats.cycles as f64 / r2.stats.cycles.max(1) as f64);
    }
    geomean(&sp)
}

fn main() {
    let size = size_from_env();
    let mut rep = Report::new(
        "Sec. 5.4 — R2D2 latency tolerance (geomean speedup on subset)",
        &["fetch_table", "regid_calc", "lr_add", "geomean_speedup", "drop_%"],
    );
    let base_cfg = GpuConfig::default();
    let nominal = geomean_speedup(&base_cfg, size);
    let mut sweep = vec![(0u64, 0u64, 4u64)];
    for f in [1u64, 3, 5, 7, 9] {
        sweep.push((f, 1, 4));
    }
    for r in [3u64, 5, 7] {
        sweep.push((1, r, 4));
    }
    sweep.push((7, 5, 4)); // the paper's combined 1%-drop operating point
    for (ft, rc, la) in sweep {
        let cfg = GpuConfig {
            r2d2: R2d2Latencies { fetch_table: ft, regid_calc: rc, lr_add: la },
            ..GpuConfig::default()
        };
        let s = geomean_speedup(&cfg, size);
        let drop = 100.0 * (nominal - s) / nominal;
        rep.row(vec![
            ft.to_string(),
            rc.to_string(),
            la.to_string(),
            fmt_x(s),
            format!("{drop:.2}"),
        ]);
        eprintln!("  [fetch={ft} regid={rc} add={la} done]");
    }
    rep.finish("sec54_latency_study");
    println!("paper: ~1% speedup drop at 7-cycle fetch or 5-cycle reg-ID latency");
}
