//! Ablation study of R2D2's design choices (DESIGN.md):
//! (a) the Sec. 3.1.4 grouping of same-shape combinations,
//! (b) the 16-entry register table size (Sec. 3.3),
//! (c) mapping scalar combinations to coefficient registers.
//!
//! Reported as dynamic warp-instruction reduction vs the baseline GPU.

use r2d2_bench::{fmt_pct, pct_reduction, run_figure_jobs, size_from_env, Report};
use r2d2_harness::sets::{ablation_variants, ABLATION_SUBSET};

fn main() {
    let specs = r2d2_harness::sets::ablation(size_from_env());
    let summary = run_figure_jobs(&specs);
    let variants = ablation_variants();
    let stride = 1 + variants.len(); // baseline + one job per variant
    let mut rep = Report::new(
        "Ablation — R2D2 warp-instruction reduction (%) under design variants",
        &[
            "bench",
            "full",
            "no-grouping",
            "lr=4",
            "lr=8",
            "no-scalar-cr",
        ],
    );
    let mut sums = vec![0.0f64; variants.len()];
    for (w, name) in ABLATION_SUBSET.iter().enumerate() {
        let base = &summary.records[w * stride];
        let mut cells = vec![name.to_string()];
        for (vi, _) in variants.iter().enumerate() {
            let r = &summary.records[w * stride + 1 + vi];
            let red = pct_reduction(base.stats.warp_instrs, r.stats.warp_instrs);
            sums[vi] += red;
            cells.push(fmt_pct(red));
        }
        rep.row(cells);
    }
    let n = ABLATION_SUBSET.len() as f64;
    rep.row(
        std::iter::once("AVG".to_string())
            .chain(sums.iter().map(|s| fmt_pct(s / n)))
            .collect(),
    );
    rep.finish("ablation_design_choices");
    println!("expected: full >= lr=8 >= lr=4; grouping and scalar mapping each contribute");
}
