//! Ablation study of R2D2's design choices (DESIGN.md):
//! (a) the Sec. 3.1.4 grouping of same-shape combinations,
//! (b) the 16-entry register table size (Sec. 3.3),
//! (c) mapping scalar combinations to coefficient registers.
//!
//! Reported as dynamic warp-instruction reduction vs the baseline GPU.

use r2d2_bench::{fmt_pct, pct_reduction, run_model, run_r2d2_with, size_from_env, Model, Report};
use r2d2_core::GenOptions;
use r2d2_sim::GpuConfig;

const SUBSET: &[&str] = &["BP", "2DC", "CFD", "SRAD2", "SAD", "HSP", "KM", "GEM", "RES"];

fn main() {
    let cfg = GpuConfig::default();
    let size = size_from_env();
    let variants: Vec<(&str, GenOptions)> = vec![
        ("full", GenOptions::default()),
        ("no-grouping", GenOptions { share_groups: false, ..Default::default() }),
        ("lr=4", GenOptions { max_lr: 4, ..Default::default() }),
        ("lr=8", GenOptions { max_lr: 8, ..Default::default() }),
        ("no-scalar-cr", GenOptions { map_scalars: false, ..Default::default() }),
    ];
    let mut rep = Report::new(
        "Ablation — R2D2 warp-instruction reduction (%) under design variants",
        &["bench", "full", "no-grouping", "lr=4", "lr=8", "no-scalar-cr"],
    );
    let mut sums = vec![0.0f64; variants.len()];
    for name in SUBSET {
        let w = r2d2_workloads::build(name, size).unwrap();
        let base = run_model(&cfg, &w, Model::Baseline);
        let mut cells = vec![name.to_string()];
        for (vi, (_, opts)) in variants.iter().enumerate() {
            let r = run_r2d2_with(&cfg, &w, opts);
            let red = pct_reduction(base.stats.warp_instrs, r.stats.warp_instrs);
            sums[vi] += red;
            cells.push(fmt_pct(red));
        }
        rep.row(cells);
        eprintln!("  [{name} done]");
    }
    let n = SUBSET.len() as f64;
    rep.row(
        std::iter::once("AVG".to_string()).chain(sums.iter().map(|s| fmt_pct(s / n))).collect(),
    );
    rep.finish("ablation_design_choices");
    println!("expected: full >= lr=8 >= lr=4; grouping and scalar mapping each contribute");
}
