//! Paper Fig. 15: execution cycles of linear vs non-linear instructions,
//! normalized to the baseline. We report the linear-prologue cycles (the
//! point at which the last SM finished coefficient + thread-index +
//! first-wave block-index computation) as the linear share; the paper puts
//! it at ~1% of execution time.

use r2d2_bench::{fmt_pct, fmt_x, run_figure_jobs, size_from_env, Report};

fn main() {
    let specs = r2d2_harness::sets::baseline_r2d2_pairs(size_from_env());
    let summary = run_figure_jobs(&specs);
    let mut rep = Report::new(
        "Fig. 15 — R2D2 cycles vs baseline, and linear-prologue share",
        &[
            "bench",
            "base_cycles",
            "r2d2_cycles",
            "norm",
            "prologue",
            "linear_share_%",
        ],
    );
    let mut share_sum = 0.0;
    let mut n = 0.0;
    for (w, (name, _)) in r2d2_workloads::NAMES.iter().enumerate() {
        let base = &summary.records[w * 2];
        let r2 = &summary.records[w * 2 + 1];
        let share = 100.0 * r2.stats.prologue_cycles as f64 / r2.stats.cycles.max(1) as f64;
        share_sum += share;
        n += 1.0;
        rep.row(vec![
            name.to_string(),
            base.stats.cycles.to_string(),
            r2.stats.cycles.to_string(),
            fmt_x(r2.stats.cycles as f64 / base.stats.cycles.max(1) as f64),
            r2.stats.prologue_cycles.to_string(),
            fmt_pct(share),
        ]);
    }
    rep.row(vec![
        "AVG".into(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        fmt_pct(share_sum / n),
    ]);
    rep.finish("fig15_cycle_breakdown");
    println!("paper: linear-instruction execution time ~1% of total");
}
