//! Paper Fig. 15: execution cycles of linear vs non-linear instructions,
//! normalized to the baseline. We report the linear-prologue cycles (the
//! point at which the last SM finished coefficient + thread-index +
//! first-wave block-index computation) as the linear share; the paper puts
//! it at ~1% of execution time.

use r2d2_bench::{fmt_pct, fmt_x, run_model, size_from_env, Model, Report};
use r2d2_sim::GpuConfig;

fn main() {
    let cfg = GpuConfig::default();
    let size = size_from_env();
    let mut rep = Report::new(
        "Fig. 15 — R2D2 cycles vs baseline, and linear-prologue share",
        &["bench", "base_cycles", "r2d2_cycles", "norm", "prologue", "linear_share_%"],
    );
    let mut share_sum = 0.0;
    let mut n = 0.0;
    for (name, _) in r2d2_workloads::NAMES {
        let w = r2d2_workloads::build(name, size).unwrap();
        let base = run_model(&cfg, &w, Model::Baseline);
        let r2 = run_model(&cfg, &w, Model::R2d2);
        let share = 100.0 * r2.stats.prologue_cycles as f64 / r2.stats.cycles.max(1) as f64;
        share_sum += share;
        n += 1.0;
        rep.row(vec![
            name.to_string(),
            base.stats.cycles.to_string(),
            r2.stats.cycles.to_string(),
            fmt_x(r2.stats.cycles as f64 / base.stats.cycles.max(1) as f64),
            r2.stats.prologue_cycles.to_string(),
            fmt_pct(share),
        ]);
        eprintln!("  [{name} done]");
    }
    rep.row(vec![
        "AVG".into(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        fmt_pct(share_sum / n),
    ]);
    rep.finish("fig15_cycle_breakdown");
    println!("paper: linear-instruction execution time ~1% of total");
}
