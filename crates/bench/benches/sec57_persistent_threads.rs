//! Paper Sec. 5.7: persistent-thread case study. FFT_PT schedules virtual
//! work through a regular (linear) chunk stride, so R2D2 covers its index
//! computation; the paper reports "considerable performance improvement" for
//! FFT_PT.

use r2d2_bench::{fmt_pct, fmt_x, pct_reduction, run_model, size_from_env, Model, Report};
use r2d2_sim::GpuConfig;

fn main() {
    let cfg = GpuConfig::default();
    let size = size_from_env();
    let mut rep = Report::new(
        "Sec. 5.7 — FFT vs persistent-thread FFT under R2D2",
        &["bench", "instr_reduction_%", "speedup"],
    );
    for name in ["FFT", "FFT_PT"] {
        let w = r2d2_workloads::build(name, size).unwrap();
        let base = run_model(&cfg, &w, Model::Baseline);
        let r2 = run_model(&cfg, &w, Model::R2d2);
        rep.row(vec![
            name.to_string(),
            fmt_pct(pct_reduction(base.stats.warp_instrs, r2.stats.warp_instrs)),
            fmt_x(base.stats.cycles as f64 / r2.stats.cycles.max(1) as f64),
        ]);
        eprintln!("  [{name} done]");
    }
    rep.finish("sec57_persistent_threads");
    println!("paper: regular-communication persistent threads benefit considerably");
}
