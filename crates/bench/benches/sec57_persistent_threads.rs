//! Paper Sec. 5.7: persistent-thread case study. FFT_PT schedules virtual
//! work through a regular (linear) chunk stride, so R2D2 covers its index
//! computation; the paper reports "considerable performance improvement" for
//! FFT_PT.

use r2d2_bench::{fmt_pct, fmt_x, pct_reduction, run_figure_jobs, size_from_env, Report};

fn main() {
    let specs = r2d2_harness::sets::sec57(size_from_env());
    let summary = run_figure_jobs(&specs);
    let mut rep = Report::new(
        "Sec. 5.7 — FFT vs persistent-thread FFT under R2D2",
        &["bench", "instr_reduction_%", "speedup"],
    );
    for (i, name) in ["FFT", "FFT_PT"].iter().enumerate() {
        let base = &summary.records[i * 2];
        let r2 = &summary.records[i * 2 + 1];
        rep.row(vec![
            name.to_string(),
            fmt_pct(pct_reduction(base.stats.warp_instrs, r2.stats.warp_instrs)),
            fmt_x(base.stats.cycles as f64 / r2.stats.cycles.max(1) as f64),
        ]);
    }
    rep.finish("sec57_persistent_threads");
    println!("paper: regular-communication persistent threads benefit considerably");
}
