//! Paper Sec. 5.8.2: SM-count sensitivity. Sweeping 80..160 SMs with fixed
//! kernel sizes: linear combinations are shared across fewer blocks per SM,
//! but R2D2's relative performance must not drop.

use r2d2_bench::{fmt_x, geomean, run_model, size_from_env, Model, Report};
use r2d2_sim::GpuConfig;

const SUBSET: &[&str] = &["BP", "NN", "SRAD2", "2DC", "KM", "HSP"];

fn main() {
    let size = size_from_env();
    let mut rep = Report::new(
        "Sec. 5.8.2 — R2D2 speedup vs SM count (geomean over subset)",
        &["sms", "geomean_speedup"],
    );
    for sms in [80u32, 100, 120, 140, 160] {
        let cfg = GpuConfig::with_sms(sms);
        let mut sp = Vec::new();
        for name in SUBSET {
            let w = r2d2_workloads::build(name, size).unwrap();
            let base = run_model(&cfg, &w, Model::Baseline);
            let r2 = run_model(&cfg, &w, Model::R2d2);
            sp.push(base.stats.cycles as f64 / r2.stats.cycles.max(1) as f64);
        }
        rep.row(vec![sms.to_string(), fmt_x(geomean(&sp))]);
        eprintln!("  [{sms} SMs done]");
    }
    rep.finish("sec58_sm_sweep");
    println!("paper: no performance drop from 80 to 160 SMs");
}
