//! Paper Sec. 5.8.2: SM-count sensitivity. Sweeping 80..160 SMs with fixed
//! kernel sizes: linear combinations are shared across fewer blocks per SM,
//! but R2D2's relative performance must not drop.

use r2d2_bench::{fmt_x, geomean, run_figure_jobs, size_from_env, Report};
use r2d2_harness::sets::{SEC58_SMS, SEC58_SUBSET};

fn main() {
    let specs = r2d2_harness::sets::sec58(size_from_env());
    let summary = run_figure_jobs(&specs);
    let nw = SEC58_SUBSET.len();
    let mut rep = Report::new(
        "Sec. 5.8.2 — R2D2 speedup vs SM count (geomean over subset)",
        &["sms", "geomean_speedup"],
    );
    for (s, sms) in SEC58_SMS.iter().enumerate() {
        let sp: Vec<f64> = (0..nw)
            .map(|w| {
                let base = &summary.records[(s * nw + w) * 2];
                let r2 = &summary.records[(s * nw + w) * 2 + 1];
                base.stats.cycles as f64 / r2.stats.cycles.max(1) as f64
            })
            .collect();
        rep.row(vec![sms.to_string(), fmt_x(geomean(&sp))]);
    }
    rep.finish("sec58_sm_sweep");
    println!("paper: no performance drop from 80 to 160 SMs");
}
