//! Paper Fig. 16: total energy reduction vs the baseline GPU.
//! Paper averages: DAC 9%, DARSIE 8%, DARSIE+Scalar 9%, R2D2 17%.

use r2d2_bench::{comparison_rows, fmt_pct, size_from_env, Model, Report};
use r2d2_sim::GpuConfig;

fn main() {
    let cfg = GpuConfig::default();
    let rows = comparison_rows(&cfg, size_from_env());
    let mut rep = Report::new(
        "Fig. 16 — energy reduction vs baseline (%)",
        &["bench", "DAC", "DARSIE", "DARSIE+S", "R2D2"],
    );
    let mut sums = [0.0f64; 4];
    for r in &rows {
        let base = r.runs[0].energy.total_pj();
        let reds: Vec<f64> = (1..Model::ALL.len())
            .map(|m| 100.0 * (base - r.runs[m].energy.total_pj()) / base)
            .collect();
        for (s, v) in sums.iter_mut().zip(&reds) {
            *s += v;
        }
        rep.row(
            std::iter::once(r.name.to_string())
                .chain(reds.iter().map(|v| fmt_pct(*v)))
                .collect(),
        );
    }
    let n = rows.len() as f64;
    rep.row(
        std::iter::once("AVG".to_string()).chain(sums.iter().map(|s| fmt_pct(s / n))).collect(),
    );
    rep.finish("fig16_energy");
    println!("paper: DAC 9%, DARSIE 8%, DARSIE+S 9%, R2D2 17% (averages)");
}
