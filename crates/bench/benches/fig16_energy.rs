//! Paper Fig. 16: total energy reduction vs the baseline GPU.
//! Paper averages: DAC 9%, DARSIE 8%, DARSIE+Scalar 9%, R2D2 17%.

use r2d2_bench::{fmt_pct, run_figure_jobs, size_from_env, Report};
use r2d2_harness::sets::COMPARISON_MODELS;

fn main() {
    let specs = r2d2_harness::sets::comparison(size_from_env());
    let summary = run_figure_jobs(&specs);
    let nm = COMPARISON_MODELS.len();
    let mut rep = Report::new(
        "Fig. 16 — energy reduction vs baseline (%)",
        &["bench", "DAC", "DARSIE", "DARSIE+S", "R2D2"],
    );
    let mut sums = [0.0f64; 4];
    for (w, (name, _)) in r2d2_workloads::NAMES.iter().enumerate() {
        let runs = &summary.records[w * nm..(w + 1) * nm];
        let base = runs[0].energy.total_pj();
        let reds: Vec<f64> = (1..nm)
            .map(|m| 100.0 * (base - runs[m].energy.total_pj()) / base)
            .collect();
        for (s, v) in sums.iter_mut().zip(&reds) {
            *s += v;
        }
        rep.row(
            std::iter::once(name.to_string())
                .chain(reds.iter().map(|v| fmt_pct(*v)))
                .collect(),
        );
    }
    let n = r2d2_workloads::NAMES.len() as f64;
    rep.row(
        std::iter::once("AVG".to_string())
            .chain(sums.iter().map(|s| fmt_pct(s / n)))
            .collect(),
    );
    rep.finish("fig16_energy");
    println!("paper: DAC 9%, DARSIE 8%, DARSIE+S 9%, R2D2 17% (averages)");
}
