//! Paper Fig. 14: R2D2's dynamic instructions broken into the decoupled
//! linear blocks (coefficients / thread-index / block-index) and the
//! non-linear stream, normalized to the baseline GPU. The paper reports the
//! linear instructions at ~1% of the total on average, peaking at 19% (LUD).

use r2d2_bench::{fmt_pct, run_figure_jobs, size_from_env, Report};

fn main() {
    let specs = r2d2_harness::sets::baseline_r2d2_pairs(size_from_env());
    let summary = run_figure_jobs(&specs);
    let mut rep = Report::new(
        "Fig. 14 — R2D2 dynamic warp instructions, % of baseline",
        &[
            "bench",
            "coef",
            "tidx",
            "bidx",
            "nonlinear",
            "total",
            "linear_share",
        ],
    );
    let mut lin_share_sum = 0.0;
    let mut n = 0.0;
    for (w, (name, _)) in r2d2_workloads::NAMES.iter().enumerate() {
        let base = &summary.records[w * 2];
        let r2 = &summary.records[w * 2 + 1];
        let bt = base.stats.warp_instrs as f64;
        let p = &r2.stats.warp_instrs_by_phase;
        let total = r2.stats.warp_instrs as f64;
        let lin_share = 100.0 * r2.stats.linear_warp_share();
        lin_share_sum += lin_share;
        n += 1.0;
        rep.row(vec![
            name.to_string(),
            fmt_pct(100.0 * p[0] as f64 / bt),
            fmt_pct(100.0 * p[1] as f64 / bt),
            fmt_pct(100.0 * p[2] as f64 / bt),
            fmt_pct(100.0 * p[3] as f64 / bt),
            fmt_pct(100.0 * total / bt),
            fmt_pct(lin_share),
        ]);
    }
    rep.row(vec![
        "AVG".into(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        fmt_pct(lin_share_sum / n),
    ]);
    rep.finish("fig14_instruction_breakdown");
    println!("paper: linear instructions ~1% of R2D2's dynamic instructions on average");
}
