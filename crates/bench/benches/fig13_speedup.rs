//! Paper Fig. 13: end-to-end speedup over the baseline GPU.
//! Paper geomeans: DAC 1.15x, DARSIE 1.14x, DARSIE+Scalar 1.14x, R2D2 1.25x.

use r2d2_bench::{comparison_rows, fmt_x, geomean, size_from_env, Model, Report};
use r2d2_sim::GpuConfig;

fn main() {
    let cfg = GpuConfig::default();
    let rows = comparison_rows(&cfg, size_from_env());
    let mut rep = Report::new(
        "Fig. 13 — speedup over baseline (x)",
        &["bench", "DAC", "DARSIE", "DARSIE+S", "R2D2"],
    );
    let mut per_model: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for r in &rows {
        let base = r.runs[0].stats.cycles as f64;
        let sp: Vec<f64> = (1..Model::ALL.len())
            .map(|m| base / r.runs[m].stats.cycles as f64)
            .collect();
        for (v, s) in per_model.iter_mut().zip(&sp) {
            v.push(*s);
        }
        rep.row(
            std::iter::once(r.name.to_string()).chain(sp.iter().map(|v| fmt_x(*v))).collect(),
        );
    }
    rep.row(
        std::iter::once("GEOMEAN".to_string())
            .chain(per_model.iter().map(|v| fmt_x(geomean(v))))
            .collect(),
    );
    rep.finish("fig13_speedup");
    println!("paper: DAC 1.15x, DARSIE 1.14x, DARSIE+S 1.14x, R2D2 1.25x (geomean)");
}
