//! Paper Fig. 13: end-to-end speedup over the baseline GPU.
//! Paper geomeans: DAC 1.15x, DARSIE 1.14x, DARSIE+Scalar 1.14x, R2D2 1.25x.

use r2d2_bench::{fmt_x, geomean, run_figure_jobs, size_from_env, Report};
use r2d2_harness::sets::COMPARISON_MODELS;

fn main() {
    let specs = r2d2_harness::sets::comparison(size_from_env());
    let summary = run_figure_jobs(&specs);
    let nm = COMPARISON_MODELS.len();
    let mut rep = Report::new(
        "Fig. 13 — speedup over baseline (x)",
        &["bench", "DAC", "DARSIE", "DARSIE+S", "R2D2"],
    );
    let mut per_model: Vec<Vec<f64>> = vec![Vec::new(); nm - 1];
    for (w, (name, _)) in r2d2_workloads::NAMES.iter().enumerate() {
        let runs = &summary.records[w * nm..(w + 1) * nm];
        let base = runs[0].stats.cycles as f64;
        let sp: Vec<f64> = (1..nm)
            .map(|m| base / runs[m].stats.cycles as f64)
            .collect();
        for (v, s) in per_model.iter_mut().zip(&sp) {
            v.push(*s);
        }
        rep.row(
            std::iter::once(name.to_string())
                .chain(sp.iter().map(|v| fmt_x(*v)))
                .collect(),
        );
    }
    rep.row(
        std::iter::once("GEOMEAN".to_string())
            .chain(per_model.iter().map(|v| fmt_x(geomean(v))))
            .collect(),
    );
    rep.finish("fig13_speedup");
    println!("paper: DAC 1.15x, DARSIE 1.14x, DARSIE+S 1.14x, R2D2 1.25x (geomean)");
}
