#![warn(missing_docs)]
//! Event-based GPU energy model for the R2D2 reproduction.
//!
//! The paper evaluates energy with GPUWattch + CACTI (Sec. 5); its headline
//! claim (Fig. 16) is *relative*: R2D2 cuts total energy ~17% versus baseline
//! by removing ALU operations and register-file traffic, while memory-intensive
//! workloads see smaller savings because "memory operations consume more energy
//! than arithmetic operations".
//!
//! We reproduce that accounting structure with a simple event model: the
//! simulator counts architectural events ([`EventCounts`]) and this crate
//! converts them to energy ([`EnergyModel::breakdown`]) using per-event
//! constants. The register-file energies (14.2 pJ/read, 20.9 pJ/write) come
//! from the paper's Table 1; the remaining constants are representative values
//! in the range GPUWattch/CACTI report for a Volta-class part, chosen so that
//! the arithmetic-vs-memory energy ratio matches the paper's qualitative claim.
//!
//! # Example
//!
//! ```
//! use r2d2_energy::{EnergyModel, EventCounts};
//!
//! let model = EnergyModel::volta();
//! let mut ev = EventCounts::default();
//! ev.int_lane_ops = 1_000_000;
//! ev.rf_reads = 2_000_000;
//! ev.rf_writes = 1_000_000;
//! ev.cycles = 50_000;
//! let bd = model.breakdown(&ev);
//! assert!(bd.total_pj() > 0.0);
//! ```

/// Raw architectural event counts, filled in by the simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EventCounts {
    /// Integer ALU lane-operations (one per active lane per int warp op).
    pub int_lane_ops: u64,
    /// FP32 lane-operations.
    pub fp_lane_ops: u64,
    /// FP64 lane-operations.
    pub fp64_lane_ops: u64,
    /// Special-function-unit lane-operations.
    pub sfu_lane_ops: u64,
    /// Register-file 32-bit-equivalent reads.
    pub rf_reads: u64,
    /// Register-file 32-bit-equivalent writes.
    pub rf_writes: u64,
    /// Scalar-pipeline register reads (single 4/8-byte access, much cheaper).
    pub rf_scalar_reads: u64,
    /// Scalar-pipeline register writes.
    pub rf_scalar_writes: u64,
    /// Warp instructions fetched/decoded/issued (front-end events).
    pub fetch_decode: u64,
    /// L1 data cache accesses (per 128B transaction).
    pub l1_accesses: u64,
    /// L2 cache accesses.
    pub l2_accesses: u64,
    /// DRAM transactions (128B).
    pub dram_txns: u64,
    /// Shared-memory accesses (per transaction).
    pub shared_accesses: u64,
    /// Total GPU cycles (for static/leakage energy).
    pub cycles: u64,
}

impl EventCounts {
    /// Element-wise accumulation.
    pub fn add(&mut self, o: &EventCounts) {
        self.int_lane_ops += o.int_lane_ops;
        self.fp_lane_ops += o.fp_lane_ops;
        self.fp64_lane_ops += o.fp64_lane_ops;
        self.sfu_lane_ops += o.sfu_lane_ops;
        self.rf_reads += o.rf_reads;
        self.rf_writes += o.rf_writes;
        self.rf_scalar_reads += o.rf_scalar_reads;
        self.rf_scalar_writes += o.rf_scalar_writes;
        self.fetch_decode += o.fetch_decode;
        self.l1_accesses += o.l1_accesses;
        self.l2_accesses += o.l2_accesses;
        self.dram_txns += o.dram_txns;
        self.shared_accesses += o.shared_accesses;
        self.cycles = self.cycles.max(o.cycles);
    }
}

/// Per-event energy constants in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// pJ per integer ALU lane-op.
    pub int_op_pj: f64,
    /// pJ per FP32 lane-op.
    pub fp_op_pj: f64,
    /// pJ per FP64 lane-op.
    pub fp64_op_pj: f64,
    /// pJ per SFU lane-op.
    pub sfu_op_pj: f64,
    /// pJ per register-file read (Table 1: 14.2).
    pub rf_read_pj: f64,
    /// pJ per register-file write (Table 1: 20.9).
    pub rf_write_pj: f64,
    /// pJ per scalar register read (single word, not a 128B row).
    pub rf_scalar_read_pj: f64,
    /// pJ per scalar register write.
    pub rf_scalar_write_pj: f64,
    /// pJ per warp instruction through fetch/decode/issue.
    pub fetch_decode_pj: f64,
    /// pJ per L1 access.
    pub l1_pj: f64,
    /// pJ per L2 access.
    pub l2_pj: f64,
    /// pJ per DRAM 128B transaction.
    pub dram_pj: f64,
    /// pJ per shared-memory access.
    pub shared_pj: f64,
    /// Static (leakage + constant clocking) pJ per cycle for the whole GPU.
    pub static_pj_per_cycle: f64,
}

impl EnergyModel {
    /// Volta-class constants (TITAN V baseline of Table 1).
    pub fn volta() -> Self {
        EnergyModel {
            int_op_pj: 0.6,
            fp_op_pj: 0.9,
            fp64_op_pj: 1.8,
            sfu_op_pj: 2.4,
            rf_read_pj: 14.2,
            rf_write_pj: 20.9,
            rf_scalar_read_pj: 1.8,
            rf_scalar_write_pj: 2.6,
            fetch_decode_pj: 40.0,
            l1_pj: 90.0,
            l2_pj: 220.0,
            dram_pj: 2200.0,
            shared_pj: 55.0,
            static_pj_per_cycle: 6000.0,
        }
    }

    /// Convert counts to an energy breakdown.
    pub fn breakdown(&self, ev: &EventCounts) -> EnergyBreakdown {
        EnergyBreakdown {
            alu_pj: ev.int_lane_ops as f64 * self.int_op_pj
                + ev.fp_lane_ops as f64 * self.fp_op_pj
                + ev.fp64_lane_ops as f64 * self.fp64_op_pj
                + ev.sfu_lane_ops as f64 * self.sfu_op_pj,
            rf_pj: ev.rf_reads as f64 * self.rf_read_pj
                + ev.rf_writes as f64 * self.rf_write_pj
                + ev.rf_scalar_reads as f64 * self.rf_scalar_read_pj
                + ev.rf_scalar_writes as f64 * self.rf_scalar_write_pj,
            frontend_pj: ev.fetch_decode as f64 * self.fetch_decode_pj,
            mem_pj: ev.l1_accesses as f64 * self.l1_pj
                + ev.l2_accesses as f64 * self.l2_pj
                + ev.dram_txns as f64 * self.dram_pj
                + ev.shared_accesses as f64 * self.shared_pj,
            static_pj: ev.cycles as f64 * self.static_pj_per_cycle,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::volta()
    }
}

/// Energy by category, in picojoules (the Fig. 16 breakdown).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Execution-unit dynamic energy.
    pub alu_pj: f64,
    /// Register-file dynamic energy.
    pub rf_pj: f64,
    /// Fetch/decode/issue dynamic energy.
    pub frontend_pj: f64,
    /// Memory hierarchy dynamic energy (L1 + L2 + DRAM + shared).
    pub mem_pj: f64,
    /// Static energy (leakage × cycles).
    pub static_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.alu_pj + self.rf_pj + self.frontend_pj + self.mem_pj + self.static_pj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rf_constants() {
        let m = EnergyModel::volta();
        assert_eq!(m.rf_read_pj, 14.2);
        assert_eq!(m.rf_write_pj, 20.9);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = EnergyModel::volta();
        let ev = EventCounts {
            int_lane_ops: 10,
            fp_lane_ops: 20,
            fp64_lane_ops: 1,
            sfu_lane_ops: 2,
            rf_reads: 30,
            rf_writes: 15,
            rf_scalar_reads: 8,
            rf_scalar_writes: 4,
            fetch_decode: 5,
            l1_accesses: 4,
            l2_accesses: 3,
            dram_txns: 2,
            shared_accesses: 6,
            cycles: 100,
        };
        let bd = m.breakdown(&ev);
        let sum = bd.alu_pj + bd.rf_pj + bd.frontend_pj + bd.mem_pj + bd.static_pj;
        assert!((bd.total_pj() - sum).abs() < 1e-9);
        assert!(bd.total_pj() > 0.0);
    }

    #[test]
    fn memory_dominates_arithmetic_per_event() {
        // The paper's Sec. 5.5 rationale: memory ops cost much more than ALU ops.
        let m = EnergyModel::volta();
        assert!(m.dram_pj > 100.0 * m.int_op_pj);
        assert!(m.l2_pj > 10.0 * m.fp_op_pj);
    }

    #[test]
    fn counts_accumulate() {
        let mut a = EventCounts {
            int_lane_ops: 1,
            cycles: 10,
            ..Default::default()
        };
        let b = EventCounts {
            int_lane_ops: 2,
            cycles: 7,
            rf_reads: 5,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.int_lane_ops, 3);
        assert_eq!(a.rf_reads, 5);
        assert_eq!(a.cycles, 10, "cycles take the max (parallel hardware)");
    }

    #[test]
    fn zero_counts_zero_energy() {
        let bd = EnergyModel::volta().breakdown(&EventCounts::default());
        assert_eq!(bd.total_pj(), 0.0);
    }
}
