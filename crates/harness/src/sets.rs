//! Named job sets for the paper's figures and studies.
//!
//! Both the `cargo bench` targets and `r2d2 sweep` build their jobs here, so
//! they produce identical [`JobSpec`]s — and therefore share cache entries.
//! Running `r2d2 sweep run fig13` warms the cache for
//! `cargo bench --bench fig13_speedup` and vice versa; figures that need the
//! same runs (Figs. 12/13/16 all compare the five machine models) overlap
//! completely and cost nothing extra.
//!
//! Job layout per set is documented on each constructor; consumers index
//! `RunSummary::records` by that layout.

use r2d2_core::GenOptions;
use r2d2_workloads::Size;

use crate::spec::{ConfigOverrides, JobSpec, ModelSpec};

/// The five Fig. 12/13/16 machine models, baseline first.
pub const COMPARISON_MODELS: [ModelSpec; 5] = [
    ModelSpec::Baseline,
    ModelSpec::Dac,
    ModelSpec::Darsie,
    ModelSpec::DarsieScalar,
    ModelSpec::R2d2,
];

/// Sec. 5.4 representative subset.
pub const SEC54_SUBSET: &[&str] = &["BP", "NN", "2DC", "SRAD2", "KM", "CFD", "HSP", "FDT"];
/// Sec. 5.8.2 representative subset.
pub const SEC58_SUBSET: &[&str] = &["BP", "NN", "SRAD2", "2DC", "KM", "HSP"];
/// Ablation subset.
pub const ABLATION_SUBSET: &[&str] = &[
    "BP", "2DC", "CFD", "SRAD2", "SAD", "HSP", "KM", "GEM", "RES",
];
/// Sec. 5.4 latency sweep points `(fetch_table, regid_calc, lr_add)`, in
/// report order. The last is the paper's combined 1%-drop operating point.
pub const SEC54_POINTS: [(u64, u64, u64); 10] = [
    (0, 0, 4),
    (1, 1, 4),
    (3, 1, 4),
    (5, 1, 4),
    (7, 1, 4),
    (9, 1, 4),
    (1, 3, 4),
    (1, 5, 4),
    (1, 7, 4),
    (7, 5, 4),
];
/// Sec. 5.8.2 SM counts.
pub const SEC58_SMS: [u32; 5] = [80, 100, 120, 140, 160];
/// Table 3 backprop scales (`log2` input nodes).
pub const TABLE3_LOGS: [u32; 5] = [4, 8, 10, 12, 14];
/// Ablation design variants `(label, options)`, in report order.
pub fn ablation_variants() -> Vec<(&'static str, GenOptions)> {
    vec![
        ("full", GenOptions::default()),
        (
            "no-grouping",
            GenOptions {
                share_groups: false,
                ..Default::default()
            },
        ),
        (
            "lr=4",
            GenOptions {
                max_lr: 4,
                ..Default::default()
            },
        ),
        (
            "lr=8",
            GenOptions {
                max_lr: 8,
                ..Default::default()
            },
        ),
        (
            "no-scalar-cr",
            GenOptions {
                map_scalars: false,
                ..Default::default()
            },
        ),
    ]
}

/// Every named set, in paper order (the two simulation-free targets —
/// `sec56` and `micro` — have no job set).
pub const SET_NAMES: &[&str] = &[
    "fig04", "fig12", "fig13", "fig14", "fig15", "fig16", "table3", "sec54", "sec57", "sec58",
    "ablation",
];

fn zoo() -> impl Iterator<Item = &'static str> {
    r2d2_workloads::NAMES.iter().map(|(n, _)| *n)
}

/// Fig. 4: one `Ideals` job per zoo workload, in Table 2 order.
pub fn fig04(size: Size) -> Vec<JobSpec> {
    zoo()
        .map(|n| JobSpec::new(n, size, ModelSpec::Ideals))
        .collect()
}

/// Figs. 12/13/16: the whole zoo under all five machine models,
/// workload-major (`records[w * 5 + m]`, models in [`COMPARISON_MODELS`]
/// order).
pub fn comparison(size: Size) -> Vec<JobSpec> {
    zoo()
        .flat_map(|n| {
            COMPARISON_MODELS
                .iter()
                .map(move |&m| JobSpec::new(n, size, m))
        })
        .collect()
}

/// Figs. 14/15: the whole zoo under `(Baseline, R2D2)` pairs
/// (`records[w * 2]` / `records[w * 2 + 1]`). A strict subset of
/// [`comparison`]'s specs, so the cache is shared.
pub fn baseline_r2d2_pairs(size: Size) -> Vec<JobSpec> {
    zoo()
        .flat_map(|n| {
            [
                JobSpec::new(n, size, ModelSpec::Baseline),
                JobSpec::new(n, size, ModelSpec::R2d2),
            ]
        })
        .collect()
}

/// Table 3: `(Baseline, R2D2)` pairs for scaled backprop, one pair per entry
/// of [`TABLE3_LOGS`]. Scaled workloads have one fixed size, so `Size` does
/// not parameterize this set.
pub fn table3() -> Vec<JobSpec> {
    TABLE3_LOGS
        .iter()
        .flat_map(|log| {
            let id = format!("BP@n{log}");
            [
                JobSpec::new(&id, Size::Full, ModelSpec::Baseline),
                JobSpec::new(&id, Size::Full, ModelSpec::R2d2),
            ]
        })
        .collect()
}

/// Sec. 5.4 latency sweep. Layout: first one `Baseline` job per subset
/// workload (latency knobs only affect decoupled blocks, so one baseline
/// serves every point), then one nominal `R2D2` job per workload, then for
/// each of [`SEC54_POINTS`] one overridden `R2D2` job per workload.
pub fn sec54(size: Size) -> Vec<JobSpec> {
    let mut specs: Vec<JobSpec> = SEC54_SUBSET
        .iter()
        .map(|n| JobSpec::new(n, size, ModelSpec::Baseline))
        .collect();
    specs.extend(
        SEC54_SUBSET
            .iter()
            .map(|n| JobSpec::new(n, size, ModelSpec::R2d2)),
    );
    for &(ft, rc, la) in &SEC54_POINTS {
        specs.extend(SEC54_SUBSET.iter().map(|n| JobSpec {
            overrides: ConfigOverrides {
                fetch_table: Some(ft),
                regid_calc: Some(rc),
                lr_add: Some(la),
                ..Default::default()
            },
            ..JobSpec::new(n, size, ModelSpec::R2d2)
        }));
    }
    specs
}

/// Sec. 5.7: `(Baseline, R2D2)` pairs for FFT then FFT_PT.
pub fn sec57(size: Size) -> Vec<JobSpec> {
    ["FFT", "FFT_PT"]
        .iter()
        .flat_map(|n| {
            [
                JobSpec::new(n, size, ModelSpec::Baseline),
                JobSpec::new(n, size, ModelSpec::R2d2),
            ]
        })
        .collect()
}

/// Sec. 5.8.2 SM sweep: for each of [`SEC58_SMS`], `(Baseline, R2D2)` pairs
/// over [`SEC58_SUBSET`] with the SM count overridden
/// (`records[(s * len + w) * 2 (+1)]`).
pub fn sec58(size: Size) -> Vec<JobSpec> {
    SEC58_SMS
        .iter()
        .flat_map(|&sms| {
            SEC58_SUBSET.iter().flat_map(move |n| {
                let ov = ConfigOverrides {
                    num_sms: Some(sms),
                    ..Default::default()
                };
                [
                    JobSpec {
                        overrides: ov,
                        ..JobSpec::new(n, size, ModelSpec::Baseline)
                    },
                    JobSpec {
                        overrides: ov,
                        ..JobSpec::new(n, size, ModelSpec::R2d2)
                    },
                ]
            })
        })
        .collect()
}

/// Ablation: per subset workload, one `Baseline` job then one `R2D2` job per
/// design variant (`records[w * 6]` baseline, `records[w * 6 + 1 + v]`).
pub fn ablation(size: Size) -> Vec<JobSpec> {
    let variants = ablation_variants();
    ABLATION_SUBSET
        .iter()
        .flat_map(|n| {
            let mut v = vec![JobSpec::new(n, size, ModelSpec::Baseline)];
            v.extend(
                variants
                    .iter()
                    .map(|(_, o)| JobSpec::new(n, size, ModelSpec::R2d2With(*o))),
            );
            v
        })
        .collect()
}

/// Look up a named set ([`SET_NAMES`]).
pub fn set(name: &str, size: Size) -> Option<Vec<JobSpec>> {
    Some(match name {
        "fig04" => fig04(size),
        "fig12" | "fig13" | "fig16" => comparison(size),
        "fig14" | "fig15" => baseline_r2d2_pairs(size),
        "table3" => table3(),
        "sec54" => sec54(size),
        "sec57" => sec57(size),
        "sec58" => sec58(size),
        "ablation" => ablation(size),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_named_set_resolves_and_is_nonempty() {
        for name in SET_NAMES {
            let specs = set(name, Size::Small).unwrap_or_else(|| panic!("{name} missing"));
            assert!(!specs.is_empty(), "{name} empty");
            for s in &specs {
                assert!(
                    r2d2_workloads::resolve(&s.workload, s.size).is_some(),
                    "{name}: bad workload id {:?}",
                    s.workload
                );
            }
        }
        assert!(set("nope", Size::Small).is_none());
    }

    #[test]
    fn figure_sets_share_cache_keys() {
        // fig14's pairs are a strict subset of the fig12/13/16 comparison.
        let cmp: std::collections::HashSet<u64> = comparison(Size::Small)
            .iter()
            .map(JobSpec::content_hash)
            .collect();
        for s in baseline_r2d2_pairs(Size::Small) {
            assert!(
                cmp.contains(&s.content_hash()),
                "{} must share a key",
                s.label()
            );
        }
        // sec57's specs too (FFT/FFT_PT are zoo members).
        for s in sec57(Size::Small) {
            assert!(cmp.contains(&s.content_hash()));
        }
    }

    #[test]
    fn expected_sizes() {
        let nzoo = r2d2_workloads::NAMES.len();
        assert_eq!(fig04(Size::Small).len(), nzoo);
        assert_eq!(comparison(Size::Small).len(), nzoo * 5);
        assert_eq!(baseline_r2d2_pairs(Size::Small).len(), nzoo * 2);
        assert_eq!(table3().len(), TABLE3_LOGS.len() * 2);
        assert_eq!(
            sec54(Size::Small).len(),
            SEC54_SUBSET.len() * (2 + SEC54_POINTS.len())
        );
        assert_eq!(
            sec58(Size::Small).len(),
            SEC58_SMS.len() * SEC58_SUBSET.len() * 2
        );
        assert_eq!(ablation(Size::Small).len(), ABLATION_SUBSET.len() * 6);
    }
}
