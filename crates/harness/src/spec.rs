//! Job specifications and their content hashes.
//!
//! A [`JobSpec`] pins down everything that determines a simulation's outcome:
//! which workload, at what size, under which machine model, with which
//! configuration overrides. Two specs with the same [`JobSpec::content_hash`]
//! are guaranteed (modulo a code change, captured by [`SCHEMA_VERSION`]) to
//! produce identical results, which is what makes the on-disk cache sound:
//! the hash is computed over a canonical text encoding of every knob, so any
//! change to any knob changes the cache key.

use r2d2_core::GenOptions;
use r2d2_sim::GpuConfig;
use r2d2_workloads::Size;

use crate::json::{self, Value};

/// Bump when the simulator/transform semantics change in a way that
/// invalidates cached results (the hash preimage includes this).
pub const SCHEMA_VERSION: u32 = 1;

/// Which machine model to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSpec {
    /// Table 1 baseline GPU.
    Baseline,
    /// Decoupled Affine Computation (optimistic).
    Dac,
    /// DARSIE (optimistic).
    Darsie,
    /// DARSIE + generalized scalar pipeline.
    DarsieScalar,
    /// R2D2 with default generator options.
    R2d2,
    /// R2D2 with explicit generator options (ablations).
    R2d2With(GenOptions),
    /// Fig. 4's ideal instruction-count machines (functional, no timing).
    Ideals,
}

impl ModelSpec {
    /// Display name used in reports and records.
    pub fn name(self) -> &'static str {
        match self {
            ModelSpec::Baseline => "Baseline",
            ModelSpec::Dac => "DAC",
            ModelSpec::Darsie => "DARSIE",
            ModelSpec::DarsieScalar => "DARSIE+S",
            ModelSpec::R2d2 | ModelSpec::R2d2With(_) => "R2D2",
            ModelSpec::Ideals => "Ideals",
        }
    }

    /// Canonical text form (hash preimage component; also the CSV `model`
    /// column).
    pub fn canonical(self) -> String {
        match self {
            ModelSpec::Baseline => "baseline".into(),
            ModelSpec::Dac => "dac".into(),
            ModelSpec::Darsie => "darsie".into(),
            ModelSpec::DarsieScalar => "darsie_scalar".into(),
            ModelSpec::R2d2 => "r2d2".into(),
            ModelSpec::R2d2With(o) => {
                format!(
                    "r2d2[max_lr={},share={},scalars={}]",
                    o.max_lr, o.share_groups, o.map_scalars
                )
            }
            ModelSpec::Ideals => "ideals".into(),
        }
    }

    fn to_json(self) -> Value {
        json::s(&self.canonical())
    }

    fn from_json(v: &Value) -> Option<ModelSpec> {
        let s = v.as_str()?;
        Some(match s {
            "baseline" => ModelSpec::Baseline,
            "dac" => ModelSpec::Dac,
            "darsie" => ModelSpec::Darsie,
            "darsie_scalar" => ModelSpec::DarsieScalar,
            "r2d2" => ModelSpec::R2d2,
            "ideals" => ModelSpec::Ideals,
            s if s.starts_with("r2d2[") && s.ends_with(']') => {
                let body = &s[5..s.len() - 1];
                let mut opts = GenOptions::default();
                for part in body.split(',') {
                    let (k, v) = part.split_once('=')?;
                    match k {
                        "max_lr" => opts.max_lr = v.parse().ok()?,
                        "share" => opts.share_groups = v.parse().ok()?,
                        "scalars" => opts.map_scalars = v.parse().ok()?,
                        _ => return None,
                    }
                }
                ModelSpec::R2d2With(opts)
            }
            _ => return None,
        })
    }
}

impl std::str::FromStr for ModelSpec {
    type Err = String;

    /// Parse a model name: any [`ModelSpec::canonical`] form, plus the CLI
    /// aliases `darsie-scalar` and the capitalized display names.
    fn from_str(s: &str) -> Result<ModelSpec, String> {
        if s == "darsie-scalar" {
            return Ok(ModelSpec::DarsieScalar);
        }
        ModelSpec::from_json(&Value::Str(s.to_string())).ok_or_else(|| {
            format!("unknown model {s:?} (baseline|dac|darsie|darsie-scalar|r2d2|ideals)")
        })
    }
}

/// Optional deviations from the default [`GpuConfig`]. `None` means "leave at
/// default"; only set fields enter the cache key via the canonical encoding
/// (but a default-valued `Some` hashes differently from `None` on purpose —
/// explicit is explicit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfigOverrides {
    /// Number of SMs (Sec. 5.8 scaling study).
    pub num_sms: Option<u32>,
    /// R2D2 fetch-table latency (Sec. 5.4 sensitivity).
    pub fetch_table: Option<u64>,
    /// R2D2 register-id calculation latency (Sec. 5.4).
    pub regid_calc: Option<u64>,
    /// R2D2 `%lr` addition latency (Sec. 5.4).
    pub lr_add: Option<u64>,
}

impl ConfigOverrides {
    /// Produce the effective [`GpuConfig`] for this job.
    pub fn apply(&self) -> GpuConfig {
        let mut cfg = GpuConfig::default();
        if let Some(n) = self.num_sms {
            cfg = GpuConfig::with_sms(n);
        }
        if let Some(v) = self.fetch_table {
            cfg.r2d2.fetch_table = v;
        }
        if let Some(v) = self.regid_calc {
            cfg.r2d2.regid_calc = v;
        }
        if let Some(v) = self.lr_add {
            cfg.r2d2.lr_add = v;
        }
        cfg
    }

    fn canonical(&self) -> String {
        fn f<T: std::fmt::Display>(v: Option<T>) -> String {
            v.map_or_else(|| "-".to_string(), |x| x.to_string())
        }
        format!(
            "sms={};ft={};rc={};la={}",
            f(self.num_sms),
            f(self.fetch_table),
            f(self.regid_calc),
            f(self.lr_add)
        )
    }

    fn to_json(self) -> Value {
        fn opt(v: Option<u64>) -> Value {
            v.map_or(Value::Null, json::int)
        }
        json::obj(vec![
            ("num_sms", opt(self.num_sms.map(u64::from))),
            ("fetch_table", opt(self.fetch_table)),
            ("regid_calc", opt(self.regid_calc)),
            ("lr_add", opt(self.lr_add)),
        ])
    }

    fn from_json(v: &Value) -> Option<ConfigOverrides> {
        fn opt(v: Option<&Value>) -> Option<u64> {
            v.and_then(Value::as_u64)
        }
        Some(ConfigOverrides {
            num_sms: opt(v.get("num_sms")).and_then(|n| u32::try_from(n).ok()),
            fetch_table: opt(v.get("fetch_table")),
            regid_calc: opt(v.get("regid_calc")),
            lr_add: opt(v.get("lr_add")),
        })
    }
}

/// One experiment: a workload under a machine model and configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Workload id accepted by [`r2d2_workloads::resolve`]: a Table 2
    /// abbreviation (`"BP"`) or a scaled variant (`"BP@n12"`).
    pub workload: String,
    /// Input scale.
    pub size: Size,
    /// Machine model.
    pub model: ModelSpec,
    /// Configuration deviations from [`GpuConfig::default`].
    pub overrides: ConfigOverrides,
    /// Run with the stall-attribution profiler attached and emit trace
    /// artifacts. Profiled runs produce the same `Stats` core but populate
    /// `issued_sm_cycles`/`stall_sm_cycles`, so they cache separately.
    pub profile: bool,
    /// Worker threads for the sharded timing loop; `0` defers to the
    /// `R2D2_THREADS` environment variable (then to 1). Deliberately
    /// excluded from [`JobSpec::canonical`], the content hash, and the JSON
    /// form: results are bit-identical at every thread count, so the thread
    /// count is an execution knob, not part of the experiment's identity —
    /// cached results stay valid when it changes.
    pub threads: u32,
}

impl JobSpec {
    /// A plain (no overrides) job at the given size.
    pub fn new(workload: &str, size: Size, model: ModelSpec) -> JobSpec {
        JobSpec {
            workload: workload.to_string(),
            size,
            model,
            overrides: ConfigOverrides::default(),
            profile: false,
            threads: 0,
        }
    }

    /// Canonical text encoding — the content-hash preimage. Every field of
    /// the spec (and the schema version) appears here. `profile` is appended
    /// only when set, so all pre-existing cache keys are preserved.
    pub fn canonical(&self) -> String {
        let mut c = format!(
            "r2d2-job-v{};w={};size={};model={};cfg={}",
            SCHEMA_VERSION,
            self.workload,
            match self.size {
                Size::Small => "small",
                Size::Full => "full",
            },
            self.model.canonical(),
            self.overrides.canonical()
        );
        if self.profile {
            c.push_str(";profile=1");
        }
        c
    }

    /// Stable 64-bit FNV-1a content hash of [`JobSpec::canonical`].
    pub fn content_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for b in self.canonical().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        h
    }

    /// The hash as the 16-hex-digit cache file stem.
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.content_hash())
    }

    /// Short human label for progress lines.
    pub fn label(&self) -> String {
        let mut l = format!("{}/{}", self.workload, self.model.name());
        if self.overrides != ConfigOverrides::default() {
            l.push_str(&format!(" [{}]", self.overrides.canonical()));
        }
        if self.profile {
            l.push_str(" [prof]");
        }
        l
    }

    /// Spec as JSON (embedded in cache files for verification).
    pub fn to_json(&self) -> Value {
        json::obj(vec![
            ("workload", json::s(&self.workload)),
            (
                "size",
                json::s(match self.size {
                    Size::Small => "small",
                    Size::Full => "full",
                }),
            ),
            ("model", self.model.to_json()),
            ("overrides", self.overrides.to_json()),
            ("profile", Value::Bool(self.profile)),
        ])
    }

    /// Decode a spec from a submission-request JSON object — the lenient
    /// wire form used by `r2d2-serve`'s `POST /jobs`. Only `workload` is
    /// required; `size` defaults to `"full"`, `model` to `"baseline"`,
    /// `overrides` to none, and `profile` to `false`. A `threads` key (an
    /// execution knob, never part of the cache identity) is honored when
    /// present. Returns a descriptive error for bad fields.
    pub fn from_json_request(v: &Value) -> Result<JobSpec, String> {
        let workload = v
            .get("workload")
            .and_then(Value::as_str)
            .ok_or("missing or non-string \"workload\"")?
            .to_string();
        let size = match v.get("size").map(|s| s.as_str()) {
            None => Size::Full,
            Some(Some("full")) => Size::Full,
            Some(Some("small")) => Size::Small,
            Some(other) => return Err(format!("bad \"size\" {other:?} (small|full)")),
        };
        let model = match v.get("model") {
            None => ModelSpec::Baseline,
            Some(m) => {
                ModelSpec::from_json(m).ok_or_else(|| format!("bad \"model\" {:?}", m.to_json()))?
            }
        };
        let overrides = match v.get("overrides") {
            None | Some(Value::Null) => ConfigOverrides::default(),
            Some(o) => ConfigOverrides::from_json(o).ok_or("bad \"overrides\" object")?,
        };
        let profile = match v.get("profile") {
            None | Some(Value::Null) => false,
            Some(p) => p.as_bool().ok_or("\"profile\" must be a boolean")?,
        };
        let threads = match v.get("threads") {
            None | Some(Value::Null) => 0,
            Some(t) => t
                .as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or("\"threads\" must be a small non-negative integer")?,
        };
        Ok(JobSpec {
            workload,
            size,
            model,
            overrides,
            profile,
            threads,
        })
    }

    /// Parse a spec back from its JSON form.
    pub fn from_json(v: &Value) -> Option<JobSpec> {
        Some(JobSpec {
            workload: v.get("workload")?.as_str()?.to_string(),
            size: match v.get("size")?.as_str()? {
                "small" => Size::Small,
                "full" => Size::Full,
                _ => return None,
            },
            model: ModelSpec::from_json(v.get("model")?)?,
            overrides: ConfigOverrides::from_json(v.get("overrides")?)?,
            // Absent in specs embedded before the profiler existed.
            profile: v.get("profile").and_then(Value::as_bool).unwrap_or(false),
            // Never serialized: an execution knob, not part of job identity.
            threads: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_spec_same_hash() {
        let a = JobSpec::new("BP", Size::Full, ModelSpec::R2d2);
        let b = JobSpec::new("BP", Size::Full, ModelSpec::R2d2);
        assert_eq!(a.content_hash(), b.content_hash());
        assert_eq!(a.hash_hex().len(), 16);
    }

    #[test]
    fn any_knob_change_changes_hash() {
        let base = JobSpec::new("BP", Size::Full, ModelSpec::R2d2);
        let mut variants = vec![
            JobSpec::new("NN", Size::Full, ModelSpec::R2d2),
            JobSpec::new("BP", Size::Small, ModelSpec::R2d2),
            JobSpec::new("BP", Size::Full, ModelSpec::Baseline),
            JobSpec::new("BP", Size::Full, ModelSpec::Dac),
            JobSpec::new("BP", Size::Full, ModelSpec::Ideals),
            JobSpec::new(
                "BP",
                Size::Full,
                ModelSpec::R2d2With(GenOptions {
                    max_lr: 8,
                    ..GenOptions::default()
                }),
            ),
            JobSpec::new(
                "BP",
                Size::Full,
                ModelSpec::R2d2With(GenOptions {
                    share_groups: false,
                    ..GenOptions::default()
                }),
            ),
        ];
        for (field, ov) in [
            (
                "num_sms",
                ConfigOverrides {
                    num_sms: Some(120),
                    ..Default::default()
                },
            ),
            (
                "fetch_table",
                ConfigOverrides {
                    fetch_table: Some(2),
                    ..Default::default()
                },
            ),
            (
                "regid_calc",
                ConfigOverrides {
                    regid_calc: Some(3),
                    ..Default::default()
                },
            ),
            (
                "lr_add",
                ConfigOverrides {
                    lr_add: Some(8),
                    ..Default::default()
                },
            ),
        ] {
            let mut j = base.clone();
            j.overrides = ov;
            assert_ne!(
                j.content_hash(),
                base.content_hash(),
                "{field} must enter the hash"
            );
            variants.push(j);
        }
        let mut hashes: Vec<u64> = variants.iter().map(JobSpec::content_hash).collect();
        hashes.push(base.content_hash());
        let n = hashes.len();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), n, "all variant hashes must be distinct");
    }

    #[test]
    fn spec_json_roundtrip() {
        let specs = [
            JobSpec::new("BP@n12", Size::Full, ModelSpec::Ideals),
            JobSpec {
                workload: "KM".into(),
                size: Size::Small,
                model: ModelSpec::R2d2With(GenOptions {
                    max_lr: 4,
                    share_groups: false,
                    map_scalars: true,
                }),
                overrides: ConfigOverrides {
                    num_sms: Some(160),
                    fetch_table: Some(1),
                    regid_calc: None,
                    lr_add: Some(4),
                },
                profile: true,
                threads: 0,
            },
        ];
        for spec in specs {
            let text = spec.to_json().to_json();
            let back = JobSpec::from_json(&crate::json::parse(&text).unwrap()).unwrap();
            assert_eq!(spec, back);
        }
    }

    #[test]
    fn profile_flag_enters_hash_only_when_set() {
        let base = JobSpec::new("BP", Size::Full, ModelSpec::R2d2);
        let prof = JobSpec {
            profile: true,
            ..base.clone()
        };
        assert_ne!(base.content_hash(), prof.content_hash());
        // Unset profile leaves the canonical form (and so every cache key
        // minted before the flag existed) unchanged.
        assert!(!base.canonical().contains("profile"));
        let text = prof.to_json().to_json();
        let back = JobSpec::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(prof, back);
    }

    #[test]
    fn request_decode_defaults_and_errors() {
        let v = crate::json::parse("{\"workload\":\"NN\"}").unwrap();
        let spec = JobSpec::from_json_request(&v).unwrap();
        assert_eq!(spec, JobSpec::new("NN", Size::Full, ModelSpec::Baseline));

        let v = crate::json::parse(
            "{\"workload\":\"BP\",\"size\":\"small\",\"model\":\"r2d2\",\
             \"overrides\":{\"num_sms\":16},\"threads\":4,\"profile\":true}",
        )
        .unwrap();
        let spec = JobSpec::from_json_request(&v).unwrap();
        assert_eq!(spec.workload, "BP");
        assert_eq!(spec.size, Size::Small);
        assert_eq!(spec.model, ModelSpec::R2d2);
        assert_eq!(spec.overrides.num_sms, Some(16));
        assert_eq!(spec.threads, 4);
        assert!(spec.profile);
        // threads never enters the identity.
        let mut bare = spec.clone();
        bare.threads = 0;
        assert_eq!(spec.content_hash(), bare.content_hash());

        for (body, needle) in [
            ("{}", "workload"),
            ("{\"workload\":\"NN\",\"size\":\"tiny\"}", "size"),
            ("{\"workload\":\"NN\",\"model\":\"gpt\"}", "model"),
            ("{\"workload\":\"NN\",\"threads\":-1}", "threads"),
        ] {
            let v = crate::json::parse(body).unwrap();
            let err = JobSpec::from_json_request(&v).unwrap_err();
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn model_from_str_accepts_canonical_and_aliases() {
        use std::str::FromStr;
        for (s, m) in [
            ("baseline", ModelSpec::Baseline),
            ("dac", ModelSpec::Dac),
            ("darsie", ModelSpec::Darsie),
            ("darsie_scalar", ModelSpec::DarsieScalar),
            ("darsie-scalar", ModelSpec::DarsieScalar),
            ("r2d2", ModelSpec::R2d2),
            ("ideals", ModelSpec::Ideals),
        ] {
            assert_eq!(ModelSpec::from_str(s).unwrap(), m);
        }
        assert!(ModelSpec::from_str("warp-drive").is_err());
    }

    #[test]
    fn overrides_apply_to_config() {
        let ov = ConfigOverrides {
            num_sms: Some(100),
            fetch_table: Some(9),
            regid_calc: None,
            lr_add: Some(2),
        };
        let cfg = ov.apply();
        assert_eq!(cfg.num_sms, 100);
        assert_eq!(cfg.r2d2.fetch_table, 9);
        assert_eq!(cfg.r2d2.regid_calc, GpuConfig::default().r2d2.regid_calc);
        assert_eq!(cfg.r2d2.lr_add, 2);
    }
}
