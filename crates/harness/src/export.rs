//! Unified CSV export of cached results.
//!
//! `results/run_records.csv` is a flat, stable-schema materialization of the
//! whole cache — one row per cached job — consumed by
//! `scripts/summarize_results.py` (which also still understands the legacy
//! per-figure CSVs the bench targets write).

use std::io::Write as _;
use std::path::{Path, PathBuf};

use r2d2_sim::trace::chrome;
use r2d2_sim::Profiler;

use crate::cache::{results_dir, Cache};
use crate::json;
use crate::record::RunRecord;
use crate::spec::JobSpec;

/// Column order of the unified CSV. Append-only: the Python side addresses
/// columns by name.
pub const CSV_HEADER: &str = "workload,size,model,num_sms,fetch_table,regid_calc,lr_add,hash,\
used_r2d2,cycles,warp_instrs,thread_instrs,scalar_warp_instrs,warp_coef,warp_tidx,warp_bidx,\
warp_main,prologue_cycles,l1_hits,l1_misses,l2_hits,l2_misses,dram_txns,shared_txns,\
alu_pj,rf_pj,frontend_pj,mem_pj,static_pj,total_pj,\
ideal_baseline,ideal_wp,ideal_tb,ideal_ln,wall_ms,cached,\
issued_sm_cycles,stall_scoreboard,stall_operand_collector,stall_lsu_mshr,stall_dram,\
stall_barrier,stall_idle_skip,threads";

/// Every valid `(spec, record)` pair currently in the cache. Unreadable or
/// malformed files are skipped, matching the cache's miss-not-error policy.
pub fn cache_entries(cache: &Cache) -> Vec<(JobSpec, RunRecord)> {
    let mut out = Vec::new();
    let Ok(dir) = std::fs::read_dir(cache.dir()) else {
        return out;
    };
    for entry in dir.flatten() {
        let path = entry.path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let Ok(v) = json::parse(&text) else {
            continue;
        };
        let (Some(sv), Some(rv)) = (v.get("spec"), v.get("record")) else {
            continue;
        };
        if let (Some(spec), Some(rec)) = (JobSpec::from_json(sv), RunRecord::from_json(rv)) {
            out.push((spec, rec));
        }
    }
    // Deterministic order for stable diffs.
    out.sort_by_key(|(spec, _)| spec.canonical());
    out
}

fn csv_row(spec: &JobSpec, rec: &RunRecord) -> String {
    fn opt<T: std::fmt::Display>(v: Option<T>) -> String {
        v.map_or_else(String::new, |x| x.to_string())
    }
    let s = &rec.stats;
    let e = &rec.energy;
    let ideal = |f: fn(&r2d2_baselines::IdealCounts) -> u64| opt(rec.ideal.as_ref().map(f));
    format!(
        "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
        spec.workload,
        match spec.size {
            r2d2_workloads::Size::Small => "small",
            r2d2_workloads::Size::Full => "full",
        },
        spec.model.canonical(),
        opt(spec.overrides.num_sms),
        opt(spec.overrides.fetch_table),
        opt(spec.overrides.regid_calc),
        opt(spec.overrides.lr_add),
        spec.hash_hex(),
        rec.used_r2d2,
        s.cycles,
        s.warp_instrs,
        s.thread_instrs,
        s.scalar_warp_instrs,
        s.warp_instrs_by_phase[0],
        s.warp_instrs_by_phase[1],
        s.warp_instrs_by_phase[2],
        s.warp_instrs_by_phase[3],
        s.prologue_cycles,
        s.l1_hits,
        s.l1_misses,
        s.l2_hits,
        s.l2_misses,
        s.dram_txns,
        s.shared_txns,
        e.alu_pj,
        e.rf_pj,
        e.frontend_pj,
        e.mem_pj,
        e.static_pj,
        e.total_pj(),
        ideal(|c| c.baseline),
        ideal(|c| c.wp),
        ideal(|c| c.tb),
        ideal(|c| c.ln),
        rec.wall_ms,
        rec.cached,
        s.issued_sm_cycles,
        s.stall_sm_cycles[0],
        s.stall_sm_cycles[1],
        s.stall_sm_cycles[2],
        s.stall_sm_cycles[3],
        s.stall_sm_cycles[4],
        s.stall_sm_cycles[5],
        // Informational: the thread count this export would run at. Results
        // are bit-identical at every value, so rows cache independently of it.
        crate::runner::resolve_threads(spec),
    )
}

/// Write the unified CSV for every cache entry; returns the row count.
pub fn export_csv(cache: &Cache, path: &Path) -> std::io::Result<usize> {
    let entries = cache_entries(cache);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{CSV_HEADER}")?;
    for (spec, rec) in &entries {
        writeln!(f, "{}", csv_row(spec, rec))?;
    }
    Ok(entries.len())
}

/// The default export path, `results/run_records.csv`.
pub fn default_csv_path() -> PathBuf {
    results_dir().join("run_records.csv")
}

/// The directory profiled runs drop their trace artifacts in,
/// `results/profiles/`.
pub fn default_profiles_dir() -> PathBuf {
    results_dir().join("profiles")
}

/// File-name stem for one profiled job: workload, size, model, and the spec
/// hash (so overridden configs of the same job never collide).
fn profile_stem(spec: &JobSpec) -> String {
    let mut stem = format!(
        "{}_{}_{}_{}",
        spec.workload,
        match spec.size {
            r2d2_workloads::Size::Small => "small",
            r2d2_workloads::Size::Full => "full",
        },
        spec.model.canonical(),
        spec.hash_hex()
    );
    stem = stem
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect();
    stem
}

/// Write one profiled job's artifacts into `dir`: a Chrome `trace_event`
/// JSON (`<stem>.trace.json`, load via `chrome://tracing` or Perfetto), the
/// bucketed time series (`<stem>.buckets.csv`), and the per-SM stall totals
/// (`<stem>.stalls.csv`). Returns the trace path.
pub fn write_profile_artifacts_in(
    dir: &Path,
    spec: &JobSpec,
    prof: &Profiler,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let stem = profile_stem(spec);
    let trace_path = dir.join(format!("{stem}.trace.json"));
    std::fs::write(&trace_path, chrome::chrome_trace(prof).to_json())?;
    std::fs::write(
        dir.join(format!("{stem}.buckets.csv")),
        chrome::buckets_csv(prof),
    )?;
    std::fs::write(
        dir.join(format!("{stem}.stalls.csv")),
        chrome::stalls_csv(prof),
    )?;
    Ok(trace_path)
}

/// [`write_profile_artifacts_in`] against [`default_profiles_dir`]. Used by
/// the runner for `JobSpec { profile: true }` jobs.
pub fn write_profile_artifacts(spec: &JobSpec, prof: &Profiler) -> std::io::Result<PathBuf> {
    write_profile_artifacts_in(&default_profiles_dir(), spec, prof)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_matches_row_width() {
        let cols = CSV_HEADER.split(',').count();
        let spec = JobSpec::new(
            "BP",
            r2d2_workloads::Size::Small,
            crate::spec::ModelSpec::Baseline,
        );
        let rec = RunRecord {
            stats: Default::default(),
            energy: r2d2_energy::EnergyBreakdown {
                alu_pj: 0.0,
                rf_pj: 0.0,
                frontend_pj: 0.0,
                mem_pj: 0.0,
                static_pj: 0.0,
            },
            used_r2d2: false,
            ideal: None,
            wall_ms: 0.0,
            cached: false,
        };
        assert_eq!(csv_row(&spec, &rec).split(',').count(), cols);
    }
}
