//! Content-addressed on-disk result cache.
//!
//! Each completed job is stored as `results/cache/<hash>.json` where
//! `<hash>` is the job's [`JobSpec::content_hash`]. The file embeds the spec
//! alongside the record, and a load verifies the embedded spec matches the
//! requested one — so a hash collision, schema drift, or a truncated or
//! hand-edited file all degrade to a cache miss (re-simulate), never a wrong
//! result and never a panic.

use std::path::{Path, PathBuf};

use crate::json;
use crate::record::RunRecord;
use crate::spec::JobSpec;

/// Handle to a cache directory.
#[derive(Debug, Clone)]
pub struct Cache {
    dir: PathBuf,
}

/// The workspace-root `results/` directory (`R2D2_RESULTS` overrides).
pub fn results_dir() -> PathBuf {
    match std::env::var_os("R2D2_RESULTS") {
        Some(dir) => PathBuf::from(dir),
        // CARGO_MANIFEST_DIR = crates/harness; results live at the root.
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results"),
    }
}

impl Cache {
    /// The default cache under `results/cache/`.
    pub fn open_default() -> Cache {
        Cache {
            dir: results_dir().join("cache"),
        }
    }

    /// A cache rooted at an explicit directory (tests).
    pub fn at(dir: &Path) -> Cache {
        Cache {
            dir: dir.to_path_buf(),
        }
    }

    /// The directory backing this cache.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path the given spec's record lives at.
    pub fn path_for(&self, spec: &JobSpec) -> PathBuf {
        self.dir.join(format!("{}.json", spec.hash_hex()))
    }

    /// Load the cached record for `spec`, or `None` if absent, unreadable,
    /// malformed, or recorded for a different spec.
    pub fn load(&self, spec: &JobSpec) -> Option<RunRecord> {
        let text = std::fs::read_to_string(self.path_for(spec)).ok()?;
        let v = json::parse(&text).ok()?;
        let embedded = JobSpec::from_json(v.get("spec")?)?;
        if embedded != *spec {
            return None;
        }
        RunRecord::from_json(v.get("record")?)
    }

    /// Store `record` for `spec`, atomically (write temp + rename) so a
    /// crashed or concurrent run can never leave a half-written entry under
    /// the final name.
    pub fn store(&self, spec: &JobSpec, record: &RunRecord) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let body =
            json::obj(vec![("spec", spec.to_json()), ("record", record.to_json())]).to_json();
        let stem = spec.hash_hex();
        // Unique temp name per thread so parallel workers never collide.
        let tmp = self.dir.join(format!(
            ".{stem}.{}.{:?}.tmp",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&tmp, body)?;
        let dst = self.path_for(spec);
        std::fs::rename(&tmp, &dst)?;
        Ok(())
    }

    /// Delete every cache entry; returns how many files were removed.
    pub fn clean(&self) -> std::io::Result<usize> {
        let mut removed = 0;
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "json") {
                std::fs::remove_file(&path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Number of valid-looking entries currently cached.
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|d| {
                d.flatten()
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Corrupt-entry behavior is exercised end-to-end in
/// `tests/cache_behavior.rs`; unit tests here cover the embedded-spec check.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModelSpec;
    use r2d2_workloads::Size;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("r2d2-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn dummy_record() -> RunRecord {
        RunRecord {
            stats: Default::default(),
            energy: r2d2_energy::EnergyBreakdown {
                alu_pj: 0.0,
                rf_pj: 0.0,
                frontend_pj: 0.0,
                mem_pj: 0.0,
                static_pj: 0.0,
            },
            used_r2d2: false,
            ideal: None,
            wall_ms: 0.0,
            cached: false,
        }
    }

    #[test]
    fn store_load_clean() {
        let dir = tmpdir("basic");
        let cache = Cache::at(&dir);
        let spec = JobSpec::new("BP", Size::Small, ModelSpec::Baseline);
        assert!(cache.load(&spec).is_none());
        cache.store(&spec, &dummy_record()).unwrap();
        assert_eq!(cache.load(&spec), Some(dummy_record()));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.clean().unwrap(), 1);
        assert!(cache.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_embedded_spec_is_a_miss() {
        let dir = tmpdir("mismatch");
        let cache = Cache::at(&dir);
        let a = JobSpec::new("BP", Size::Small, ModelSpec::Baseline);
        let b = JobSpec::new("NN", Size::Small, ModelSpec::Baseline);
        cache.store(&a, &dummy_record()).unwrap();
        // Simulate a collision: copy a's file onto b's name.
        std::fs::copy(cache.path_for(&a), cache.path_for(&b)).unwrap();
        assert!(cache.load(&b).is_none(), "embedded spec must be verified");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
