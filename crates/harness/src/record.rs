//! The unified result record stored in the cache and consumed by
//! `scripts/summarize_results.py`.
//!
//! One [`RunRecord`] holds everything a figure needs about one job: the full
//! simulator [`Stats`] (including energy-relevant [`EventCounts`] and the
//! R2D2 phase counters), the [`EnergyBreakdown`], and — for Fig. 4's
//! functional-only jobs — the [`IdealCounts`]. Serialization is the
//! hand-rolled JSON in [`crate::json`]; all `u64` counters round-trip
//! exactly.

use r2d2_baselines::IdealCounts;
use r2d2_energy::{EnergyBreakdown, EventCounts};
use r2d2_sim::{StallCause, Stats};

use crate::json::{int, num, obj, Value};

/// Results of one job, in cache-file and CSV-exportable form.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Full simulation statistics (zero for `Ideals` jobs).
    pub stats: Stats,
    /// Energy breakdown derived from `stats.events`.
    pub energy: EnergyBreakdown,
    /// Whether the R2D2 transform actually decoupled anything.
    pub used_r2d2: bool,
    /// Fig. 4 ideal-machine counts (only for `ModelSpec::Ideals` jobs).
    pub ideal: Option<IdealCounts>,
    /// Wall-clock milliseconds the simulation took (informational; not
    /// hashed). Cache hits report 0 — see `cached`.
    pub wall_ms: f64,
    /// Whether this record was answered from the result cache (in which case
    /// `wall_ms` is 0; the stored entry keeps the original measurement).
    pub cached: bool,
}

fn phase_arr(a: &[u64; 4]) -> Value {
    Value::Arr(a.iter().map(|&v| int(v)).collect())
}

fn parse_phase_arr(v: Option<&Value>) -> Option<[u64; 4]> {
    let items = v?.as_arr()?;
    if items.len() != 4 {
        return None;
    }
    let mut out = [0u64; 4];
    for (slot, item) in out.iter_mut().zip(items) {
        *slot = item.as_u64()?;
    }
    Some(out)
}

fn events_to_json(e: &EventCounts) -> Value {
    obj(vec![
        ("int_lane_ops", int(e.int_lane_ops)),
        ("fp_lane_ops", int(e.fp_lane_ops)),
        ("fp64_lane_ops", int(e.fp64_lane_ops)),
        ("sfu_lane_ops", int(e.sfu_lane_ops)),
        ("rf_reads", int(e.rf_reads)),
        ("rf_writes", int(e.rf_writes)),
        ("rf_scalar_reads", int(e.rf_scalar_reads)),
        ("rf_scalar_writes", int(e.rf_scalar_writes)),
        ("fetch_decode", int(e.fetch_decode)),
        ("l1_accesses", int(e.l1_accesses)),
        ("l2_accesses", int(e.l2_accesses)),
        ("dram_txns", int(e.dram_txns)),
        ("shared_accesses", int(e.shared_accesses)),
        ("cycles", int(e.cycles)),
    ])
}

fn events_from_json(v: &Value) -> Option<EventCounts> {
    let g = |k: &str| v.get(k).and_then(Value::as_u64);
    Some(EventCounts {
        int_lane_ops: g("int_lane_ops")?,
        fp_lane_ops: g("fp_lane_ops")?,
        fp64_lane_ops: g("fp64_lane_ops")?,
        sfu_lane_ops: g("sfu_lane_ops")?,
        rf_reads: g("rf_reads")?,
        rf_writes: g("rf_writes")?,
        rf_scalar_reads: g("rf_scalar_reads")?,
        rf_scalar_writes: g("rf_scalar_writes")?,
        fetch_decode: g("fetch_decode")?,
        l1_accesses: g("l1_accesses")?,
        l2_accesses: g("l2_accesses")?,
        dram_txns: g("dram_txns")?,
        shared_accesses: g("shared_accesses")?,
        cycles: g("cycles")?,
    })
}

fn stats_to_json(s: &Stats) -> Value {
    obj(vec![
        ("cycles", int(s.cycles)),
        ("warp_instrs", int(s.warp_instrs)),
        ("thread_instrs", int(s.thread_instrs)),
        ("scalar_warp_instrs", int(s.scalar_warp_instrs)),
        ("skipped_warp_instrs", int(s.skipped_warp_instrs)),
        ("skipped_thread_instrs", int(s.skipped_thread_instrs)),
        ("warp_instrs_by_phase", phase_arr(&s.warp_instrs_by_phase)),
        (
            "thread_instrs_by_phase",
            phase_arr(&s.thread_instrs_by_phase),
        ),
        ("prologue_cycles", int(s.prologue_cycles)),
        ("l1_hits", int(s.l1_hits)),
        ("l1_misses", int(s.l1_misses)),
        ("l2_hits", int(s.l2_hits)),
        ("l2_misses", int(s.l2_misses)),
        ("dram_txns", int(s.dram_txns)),
        ("shared_txns", int(s.shared_txns)),
        ("issued_sm_cycles", int(s.issued_sm_cycles)),
        (
            "stall_sm_cycles",
            Value::Arr(s.stall_sm_cycles.iter().map(|&v| int(v)).collect()),
        ),
        ("events", events_to_json(&s.events)),
    ])
}

fn parse_stall_arr(v: Option<&Value>) -> Option<[u64; StallCause::COUNT]> {
    let mut out = [0u64; StallCause::COUNT];
    // Absent in entries written before the observability layer existed.
    let Some(items) = v.and_then(Value::as_arr) else {
        return Some(out);
    };
    if items.len() != StallCause::COUNT {
        return None;
    }
    for (slot, item) in out.iter_mut().zip(items) {
        *slot = item.as_u64()?;
    }
    Some(out)
}

fn stats_from_json(v: &Value) -> Option<Stats> {
    let g = |k: &str| v.get(k).and_then(Value::as_u64);
    Some(Stats {
        cycles: g("cycles")?,
        warp_instrs: g("warp_instrs")?,
        thread_instrs: g("thread_instrs")?,
        scalar_warp_instrs: g("scalar_warp_instrs")?,
        skipped_warp_instrs: g("skipped_warp_instrs")?,
        skipped_thread_instrs: g("skipped_thread_instrs")?,
        warp_instrs_by_phase: parse_phase_arr(v.get("warp_instrs_by_phase"))?,
        thread_instrs_by_phase: parse_phase_arr(v.get("thread_instrs_by_phase"))?,
        prologue_cycles: g("prologue_cycles")?,
        l1_hits: g("l1_hits")?,
        l1_misses: g("l1_misses")?,
        l2_hits: g("l2_hits")?,
        l2_misses: g("l2_misses")?,
        dram_txns: g("dram_txns")?,
        shared_txns: g("shared_txns")?,
        // Absent (and so zero) in entries from before the profiler existed.
        issued_sm_cycles: g("issued_sm_cycles").unwrap_or(0),
        stall_sm_cycles: parse_stall_arr(v.get("stall_sm_cycles"))?,
        events: events_from_json(v.get("events")?)?,
    })
}

fn energy_to_json(e: &EnergyBreakdown) -> Value {
    obj(vec![
        ("alu_pj", num(e.alu_pj)),
        ("rf_pj", num(e.rf_pj)),
        ("frontend_pj", num(e.frontend_pj)),
        ("mem_pj", num(e.mem_pj)),
        ("static_pj", num(e.static_pj)),
    ])
}

fn energy_from_json(v: &Value) -> Option<EnergyBreakdown> {
    let g = |k: &str| v.get(k).and_then(Value::as_f64);
    Some(EnergyBreakdown {
        alu_pj: g("alu_pj")?,
        rf_pj: g("rf_pj")?,
        frontend_pj: g("frontend_pj")?,
        mem_pj: g("mem_pj")?,
        static_pj: g("static_pj")?,
    })
}

fn ideal_to_json(c: &IdealCounts) -> Value {
    obj(vec![
        ("baseline", int(c.baseline)),
        ("wp", int(c.wp)),
        ("tb", int(c.tb)),
        ("ln", int(c.ln)),
        ("baseline_warp", int(c.baseline_warp)),
    ])
}

fn ideal_from_json(v: &Value) -> Option<IdealCounts> {
    let g = |k: &str| v.get(k).and_then(Value::as_u64);
    Some(IdealCounts {
        baseline: g("baseline")?,
        wp: g("wp")?,
        tb: g("tb")?,
        ln: g("ln")?,
        baseline_warp: g("baseline_warp")?,
    })
}

impl RunRecord {
    /// Serialize to a JSON value.
    pub fn to_json(&self) -> Value {
        obj(vec![
            ("stats", stats_to_json(&self.stats)),
            ("energy", energy_to_json(&self.energy)),
            ("used_r2d2", Value::Bool(self.used_r2d2)),
            (
                "ideal",
                self.ideal.as_ref().map_or(Value::Null, ideal_to_json),
            ),
            ("wall_ms", num(self.wall_ms)),
            ("cached", Value::Bool(self.cached)),
        ])
    }

    /// Parse back from JSON; `None` on any missing/mistyped field.
    pub fn from_json(v: &Value) -> Option<RunRecord> {
        Some(RunRecord {
            stats: stats_from_json(v.get("stats")?)?,
            energy: energy_from_json(v.get("energy")?)?,
            used_r2d2: v.get("used_r2d2")?.as_bool()?,
            ideal: match v.get("ideal")? {
                Value::Null => None,
                other => Some(ideal_from_json(other)?),
            },
            wall_ms: v.get("wall_ms")?.as_f64()?,
            // Absent in entries written before the flag existed.
            cached: v.get("cached").and_then(Value::as_bool).unwrap_or(false),
        })
    }

    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.energy.total_pj()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunRecord {
        let mut stats = Stats {
            cycles: 123_456_789_012,
            warp_instrs: 42,
            thread_instrs: 1344,
            scalar_warp_instrs: 7,
            skipped_warp_instrs: 3,
            skipped_thread_instrs: 96,
            warp_instrs_by_phase: [1, 2, 3, 36],
            thread_instrs_by_phase: [32, 64, 96, 1152],
            prologue_cycles: 17,
            l1_hits: 9,
            l1_misses: 1,
            l2_hits: 1,
            l2_misses: 0,
            dram_txns: 5,
            shared_txns: 11,
            issued_sm_cycles: 4000,
            stall_sm_cycles: [6, 5, 4, 3, 2, 1],
            events: EventCounts::default(),
        };
        stats.events.int_lane_ops = u64::MAX; // exercise exact u64 round-trip
        stats.events.cycles = stats.cycles;
        RunRecord {
            stats,
            energy: EnergyBreakdown {
                alu_pj: 1.25,
                rf_pj: 0.5,
                frontend_pj: 3.0,
                mem_pj: 0.125,
                static_pj: 1e9 + 0.1,
            },
            used_r2d2: true,
            ideal: Some(IdealCounts {
                baseline: 100,
                wp: 80,
                tb: 70,
                ln: 60,
                baseline_warp: 4,
            }),
            wall_ms: 1500.0,
            cached: false,
        }
    }

    #[test]
    fn json_roundtrip_is_exact() {
        for rec in [
            sample(),
            RunRecord {
                ideal: None,
                ..sample()
            },
        ] {
            let text = rec.to_json().to_json();
            let back = RunRecord::from_json(&crate::json::parse(&text).unwrap()).unwrap();
            assert_eq!(rec, back);
        }
    }

    #[test]
    fn missing_field_is_none_not_panic() {
        let mut v = sample().to_json();
        if let Value::Obj(fields) = &mut v {
            fields.retain(|(k, _)| k != "energy");
        }
        assert!(RunRecord::from_json(&v).is_none());
    }
}
