#![warn(missing_docs)]
//! Parallel experiment orchestration with content-addressed result caching.
//!
//! The simulator is deterministic and single-threaded, and one paper figure
//! needs dozens to hundreds of independent runs — a shape that wants a job
//! system, not ad-hoc loops. This crate provides it:
//!
//! - [`JobSpec`] pins down one experiment (workload id × machine model ×
//!   configuration overrides) and hashes every knob into a stable
//!   [`JobSpec::content_hash`].
//! - [`Cache`] stores each finished [`RunRecord`] under
//!   `results/cache/<hash>.json` (hand-rolled JSON — the workspace builds
//!   offline with zero external dependencies), so re-running a figure whose
//!   jobs are cached performs zero simulations.
//! - [`run_jobs`] fans a batch out over `std::thread::scope` workers;
//!   results come back in input order, so parallelism can never change what
//!   a figure reports.
//! - [`sets`] defines the per-figure job sets shared by the `cargo bench`
//!   targets and the `r2d2 sweep` CLI, which therefore share cache entries.
//! - [`export_csv`] materializes the cache as `results/run_records.csv` for
//!   `scripts/summarize_results.py`.

pub mod cache;
pub mod export;
pub mod record;
pub mod runner;
pub mod sets;
pub mod spec;

/// The workspace's hand-rolled JSON layer now lives in `r2d2-trace` (the
/// bottom of the crate stack) so the simulator's exporters can use it too;
/// re-exported here so `r2d2_harness::json::...` paths keep working.
pub use r2d2_trace::json;

pub use cache::{results_dir, Cache};
pub use export::{
    cache_entries, default_csv_path, default_profiles_dir, export_csv, write_profile_artifacts,
    write_profile_artifacts_in,
};
pub use record::RunRecord;
pub use runner::{
    execute, execute_with_profiler, resolve_threads, run_jobs, run_jobs_with, Executor, RunOptions,
    RunSummary,
};
pub use spec::{ConfigOverrides, JobSpec, ModelSpec, SCHEMA_VERSION};

/// Cooperative cancellation token, re-exported from `r2d2-sim` so service
/// layers can thread it through [`Executor::cancel`] without a direct sim
/// dependency.
pub use r2d2_sim::CancelToken;
/// Live time-series mirror, re-exported from `r2d2-trace` for
/// [`Executor::progress`].
pub use r2d2_trace::{Progress, ProgressSnapshot};

/// Workload size selected by `R2D2_SIZE` (default: full) — shared by the
/// bench targets and the CLI.
pub fn size_from_env() -> r2d2_workloads::Size {
    match std::env::var("R2D2_SIZE").as_deref() {
        Ok("small") | Ok("Small") | Ok("SMALL") => r2d2_workloads::Size::Small,
        _ => r2d2_workloads::Size::Full,
    }
}
