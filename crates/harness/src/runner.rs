//! Job execution and the parallel worker pool.
//!
//! Each job is one deterministic simulation; the pool runs independent jobs
//! on `std::thread::scope` workers pulling from a shared atomic index.
//! Results land in per-job slots, so the output order always matches the
//! input order regardless of which worker finished when — `--jobs N` can
//! never change what a figure reports, only how fast it appears.
//!
//! Orthogonally, each simulation can itself shard its SMs across threads
//! ([`JobSpec::threads`], or the `R2D2_THREADS` environment variable);
//! that is bit-identical too, so neither knob affects results.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use r2d2_core::transform::make_launch;
use r2d2_energy::EnergyModel;
use r2d2_sim::{
    BaselineFilter, CancelToken, GlobalMem, GpuConfig, IssueFilter, Launch, Profiler, SimError,
    SimSession, Stats,
};
use r2d2_trace::Progress;

use crate::cache::Cache;
use crate::record::RunRecord;
use crate::spec::{JobSpec, ModelSpec};

/// How to run a batch of jobs.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads; `0` picks `min(available_parallelism, #jobs)`.
    pub jobs: usize,
    /// Read cached results. (Completed jobs are written back to the cache
    /// either way, so `--no-cache` acts as a refresh.)
    pub use_cache: bool,
    /// Print a per-job progress line (stderr).
    pub verbose: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            jobs: 0,
            use_cache: true,
            verbose: true,
        }
    }
}

/// What a batch did, plus the records in input order.
#[derive(Debug)]
pub struct RunSummary {
    /// One record per input spec, same order.
    pub records: Vec<RunRecord>,
    /// Jobs answered from the cache.
    pub cache_hits: usize,
    /// Jobs actually simulated.
    pub simulated: usize,
    /// Workers that completed at least one job.
    pub workers_used: usize,
    /// End-to-end wall-clock seconds for the batch.
    pub wall_s: f64,
}

impl RunSummary {
    /// The one-line batch summary (also printed by [`run_jobs`]).
    pub fn line(&self) -> String {
        format!(
            "[harness] {} jobs: {} cached, {} simulated, {} workers, {:.1}s",
            self.records.len(),
            self.cache_hits,
            self.simulated,
            self.workers_used,
            self.wall_s
        )
    }
}

/// Resolve the effective simulator thread count for one job: the spec's
/// explicit value, else the `R2D2_THREADS` environment variable (the CI
/// matrix knob), else 1. Results are bit-identical at every thread count.
pub fn resolve_threads(spec: &JobSpec) -> u32 {
    if spec.threads > 0 {
        return spec.threads;
    }
    std::env::var("R2D2_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Run one launch, observed by the profiler when one is attached and
/// watching the cancel token when one is supplied.
fn sim_one(
    cfg: &GpuConfig,
    launch: &Launch,
    gmem: &mut GlobalMem,
    filter: &mut dyn IssueFilter,
    prof: &mut Option<&mut Profiler>,
    threads: u32,
    cancel: Option<&CancelToken>,
) -> Result<Stats, SimError> {
    let mut session = SimSession::new(cfg).filter(filter).threads(threads);
    if let Some(token) = cancel {
        session = session.cancel(token);
    }
    match prof {
        Some(p) => session.sink(*p).run(launch, gmem),
        None => session.run(launch, gmem),
    }
}

/// Execute one job now, ignoring the cache. Errors name the job rather than
/// panicking so the CLI can report bad ids gracefully.
///
/// For `spec.profile` jobs the stall-attribution profiler rides along
/// (`Stats::issued_sm_cycles`/`stall_sm_cycles` get populated) and trace
/// artifacts land under `results/profiles/` — see
/// [`crate::export::write_profile_artifacts`].
pub fn execute(spec: &JobSpec) -> Result<RunRecord, String> {
    execute_hooked(spec, None, None)
}

/// [`execute`] with a cancel token and/or a live progress mirror attached —
/// the entry point the `r2d2-serve` worker pool uses via [`Executor`].
///
/// A triggered `cancel` aborts the simulation at the next check point
/// (within one epoch) with a "cancelled" error. When `progress` is supplied
/// and the spec is not itself a profiled job, a throwaway profiler rides
/// along purely to feed the mirror: its totals are **not** absorbed into the
/// record's `Stats`, so the result stays bit-identical to an unobserved run
/// (and cache-compatible with it).
fn execute_hooked(
    spec: &JobSpec,
    cancel: Option<&CancelToken>,
    progress: Option<&Progress>,
) -> Result<RunRecord, String> {
    if !spec.profile && progress.is_none() {
        return execute_inner(spec, None, cancel, false);
    }
    let mut prof = Profiler::default();
    if let Some(p) = progress {
        prof.share_progress(p.clone());
    }
    let rec = execute_inner(spec, Some(&mut prof), cancel, spec.profile)?;
    if spec.profile {
        if let Err(e) = crate::export::write_profile_artifacts(spec, &prof) {
            eprintln!("[harness] warning: profile artifact write failed: {e}");
        }
    }
    Ok(rec)
}

/// [`execute`] with a caller-owned [`Profiler`] attached (regardless of
/// `spec.profile`), for callers that want the full per-SM/per-warp tables
/// and time series rather than just the `Stats` totals. No artifacts are
/// written — the caller owns the profiler.
pub fn execute_with_profiler(spec: &JobSpec, prof: &mut Profiler) -> Result<RunRecord, String> {
    execute_inner(spec, Some(prof), None, true)
}

fn execute_inner(
    spec: &JobSpec,
    mut prof: Option<&mut Profiler>,
    cancel: Option<&CancelToken>,
    absorb: bool,
) -> Result<RunRecord, String> {
    let w = r2d2_workloads::resolve(&spec.workload, spec.size)
        .ok_or_else(|| format!("unknown workload id {:?}", spec.workload))?;
    let cfg = spec.overrides.apply();
    let threads = resolve_threads(spec);
    let t0 = Instant::now();
    let mut gmem = w.gmem.clone();
    let mut stats = Stats::default();
    let mut used_r2d2 = false;
    let mut ideal = None;
    // The timing loops poll the token every epoch; this check only covers
    // the gaps they cannot see — between launches, and the functional-only
    // Ideals measurements.
    let check_cancel = || -> Result<(), String> {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            Err(format!(
                "{}/{}: cancelled between launches",
                w.name,
                spec.model.name()
            ))
        } else {
            Ok(())
        }
    };

    match spec.model {
        ModelSpec::Ideals => {
            let mut acc = r2d2_baselines::IdealCounts::default();
            for l in &w.launches {
                check_cancel()?;
                let c = r2d2_baselines::measure_ideals(l, &mut gmem)
                    .map_err(|e| format!("{}/Ideals: {e}", w.name))?;
                acc.baseline += c.baseline;
                acc.wp += c.wp;
                acc.tb += c.tb;
                acc.ln += c.ln;
                acc.baseline_warp += c.baseline_warp;
            }
            ideal = Some(acc);
        }
        ModelSpec::R2d2 => {
            for l in &w.launches {
                check_cancel()?;
                let (launch, used) =
                    make_launch(&cfg, &l.kernel, l.grid, l.block, l.params.clone());
                used_r2d2 |= used;
                let s = sim_one(
                    &cfg,
                    &launch,
                    &mut gmem,
                    &mut BaselineFilter,
                    &mut prof,
                    threads,
                    cancel,
                )
                .map_err(|e| format!("{}/R2D2: {e}", w.name))?;
                stats.merge_sequential(&s);
            }
        }
        ModelSpec::R2d2With(opts) => {
            for l in &w.launches {
                check_cancel()?;
                let r2 = r2d2_core::transform_with(&l.kernel, &opts);
                let s = if r2.meta.has_linear() {
                    used_r2d2 = true;
                    let mut launch =
                        r2d2_sim::Launch::new(r2.kernel, l.grid, l.block, l.params.clone());
                    launch.meta = Some(r2.meta);
                    sim_one(
                        &cfg,
                        &launch,
                        &mut gmem,
                        &mut BaselineFilter,
                        &mut prof,
                        threads,
                        cancel,
                    )
                } else {
                    sim_one(
                        &cfg,
                        l,
                        &mut gmem,
                        &mut BaselineFilter,
                        &mut prof,
                        threads,
                        cancel,
                    )
                }
                .map_err(|e| format!("{}/R2D2(opts): {e}", w.name))?;
                stats.merge_sequential(&s);
            }
        }
        baseline_like => {
            let mut filter: Box<dyn IssueFilter> = match baseline_like {
                ModelSpec::Baseline => Box::new(BaselineFilter),
                ModelSpec::Dac => Box::new(r2d2_baselines::DacFilter::new()),
                ModelSpec::Darsie => Box::new(r2d2_baselines::DarsieFilter::new()),
                ModelSpec::DarsieScalar => Box::new(r2d2_baselines::DarsieScalarFilter::new()),
                _ => unreachable!("handled above"),
            };
            for l in &w.launches {
                check_cancel()?;
                let s = sim_one(
                    &cfg,
                    l,
                    &mut gmem,
                    filter.as_mut(),
                    &mut prof,
                    threads,
                    cancel,
                )
                .map_err(|e| format!("{}/{}: {e}", w.name, spec.model.name()))?;
                stats.merge_sequential(&s);
            }
        }
    }

    if let Some(p) = prof.as_deref() {
        // Machine-check the attribution invariant on every profiled run:
        // every SM-cycle is either an issue or exactly one stall bucket.
        p.check_invariant()
            .map_err(|e| format!("{}/{}: {e}", w.name, spec.model.name()))?;
        if p.total_cycles() != stats.cycles {
            return Err(format!(
                "{}/{}: profiler saw {} cycles but stats report {}",
                w.name,
                spec.model.name(),
                p.total_cycles(),
                stats.cycles
            ));
        }
        if absorb {
            stats.absorb_profile(p);
        }
    }

    let energy = EnergyModel::volta().breakdown(&stats.events);
    Ok(RunRecord {
        stats,
        energy,
        used_r2d2,
        ideal,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        cached: false,
    })
}

/// The cache-aware "run one job" primitive: probe the cache, else simulate
/// and store. This is the single execution path shared by the batch pool
/// ([`run_jobs_with`]) and the `r2d2-serve` worker pool, so both report
/// identical records and keep the cache in the same shape.
#[derive(Debug, Clone)]
pub struct Executor<'a> {
    cache: &'a Cache,
    use_cache: bool,
    cancel: Option<CancelToken>,
    progress: Option<Progress>,
}

impl<'a> Executor<'a> {
    /// An executor over `cache` that reads and writes cached results.
    pub fn new(cache: &'a Cache) -> Executor<'a> {
        Executor {
            cache,
            use_cache: true,
            cancel: None,
            progress: None,
        }
    }

    /// Skip cache reads when `false` (completed jobs are still written back,
    /// so a no-cache run acts as a refresh).
    pub fn use_cache(mut self, yes: bool) -> Self {
        self.use_cache = yes;
        self
    }

    /// Watch `token` while simulating: a triggered token aborts the run
    /// within one epoch with a "cancelled" error (which is never cached).
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Mirror the run's cycle-bucketed time series into `progress` so other
    /// threads can watch it live. The mirror is marked finished when
    /// [`Executor::run`] returns (success, failure, or cache hit — a hit
    /// finishes immediately with an empty series). Attaching a mirror does
    /// not change the produced [`RunRecord`]: profiled `Stats` totals are
    /// absorbed only for `spec.profile` jobs, exactly as without a mirror.
    pub fn progress(mut self, progress: Progress) -> Self {
        self.progress = Some(progress);
        self
    }

    /// Probe the cache without simulating. A hit returns the record with
    /// `cached = true` and zero `wall_ms` (nothing ran), and rewrites the
    /// on-disk entry with `cached = true` (keeping the original wall-time
    /// measurement) so the flag survives into `results/run_records.csv`.
    /// Respects [`Executor::use_cache`]: always `None` when reads are off.
    pub fn probe(&self, spec: &JobSpec) -> Option<RunRecord> {
        if !self.use_cache {
            return None;
        }
        let stored = self.cache.load(spec)?;
        if !stored.cached {
            // First hit: flip the persisted flag, keep the measured wall
            // time, so the CSV materialization reports it.
            let mut flagged = stored.clone();
            flagged.cached = true;
            if let Err(e) = self.cache.store(spec, &flagged) {
                eprintln!("[harness] warning: cache rewrite failed: {e}");
            }
        }
        let mut rec = stored;
        rec.cached = true;
        rec.wall_ms = 0.0;
        Some(rec)
    }

    /// Run one job: probe the cache, else simulate and store. See
    /// [`Executor::probe`] for hit semantics and [`Executor::cancel`] /
    /// [`Executor::progress`] for the serve-side hooks.
    pub fn run(&self, spec: &JobSpec) -> Result<RunRecord, String> {
        let out = self.run_inner(spec);
        if let Some(p) = &self.progress {
            p.finish();
        }
        out
    }

    fn run_inner(&self, spec: &JobSpec) -> Result<RunRecord, String> {
        if let Some(rec) = self.probe(spec) {
            return Ok(rec);
        }
        let rec = execute_hooked(spec, self.cancel.as_ref(), self.progress.as_ref())?;
        if let Err(e) = self.cache.store(spec, &rec) {
            eprintln!("[harness] warning: cache write failed: {e}");
        }
        Ok(rec)
    }
}

fn worker_count(requested: usize, njobs: usize) -> usize {
    let auto = std::thread::available_parallelism().map_or(1, |n| n.get());
    let n = if requested == 0 { auto } else { requested };
    n.clamp(1, njobs.max(1))
}

/// Run a batch through the default cache, printing the summary line.
///
/// # Panics
///
/// Panics if a job fails (the workload zoo is validated by tests; bad
/// workload ids should be rejected before submission).
pub fn run_jobs(specs: &[JobSpec], opts: &RunOptions) -> RunSummary {
    let cache = Cache::open_default();
    let summary = run_jobs_with(specs, opts, &cache);
    println!("{}", summary.line());
    summary
}

/// [`run_jobs`] against an explicit cache, without printing the summary.
pub fn run_jobs_with(specs: &[JobSpec], opts: &RunOptions, cache: &Cache) -> RunSummary {
    let t0 = Instant::now();
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let hits = AtomicUsize::new(0);
    let sims = AtomicUsize::new(0);
    let workers_used = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunRecord>>> = specs.iter().map(|_| Mutex::new(None)).collect();
    let n = specs.len();
    let nworkers = worker_count(opts.jobs, n);
    let exec = Executor::new(cache).use_cache(opts.use_cache);

    std::thread::scope(|s| {
        for _ in 0..nworkers {
            s.spawn(|| {
                let mut did_any = false;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    did_any = true;
                    let spec = &specs[i];
                    let rec = exec
                        .run(spec)
                        .unwrap_or_else(|e| panic!("job {} failed: {e}", spec.label()));
                    let cached = rec.cached;
                    if cached {
                        hits.fetch_add(1, Ordering::Relaxed);
                    } else {
                        sims.fetch_add(1, Ordering::Relaxed);
                    }
                    let k = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if opts.verbose {
                        if cached {
                            eprintln!("  [{k}/{n}] {} (cached)", spec.label());
                        } else {
                            eprintln!("  [{k}/{n}] {} {:.0}ms", spec.label(), rec.wall_ms);
                        }
                    }
                    *slots[i].lock().unwrap() = Some(rec);
                }
                if did_any {
                    workers_used.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    let records = slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("every slot filled"))
        .collect();
    RunSummary {
        records,
        cache_hits: hits.into_inner(),
        simulated: sims.into_inner(),
        workers_used: workers_used.into_inner(),
        wall_s: t0.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d2_workloads::Size;

    #[test]
    fn execute_smoke_baseline_vs_r2d2() {
        let base = execute(&JobSpec::new("NN", Size::Small, ModelSpec::Baseline)).unwrap();
        let r2 = execute(&JobSpec::new("NN", Size::Small, ModelSpec::R2d2)).unwrap();
        assert!(base.stats.cycles > 0);
        assert!(r2.used_r2d2);
        assert!(r2.stats.warp_instrs < base.stats.warp_instrs);
    }

    #[test]
    fn execute_unknown_workload_is_err() {
        assert!(execute(&JobSpec::new("NOPE", Size::Small, ModelSpec::Baseline)).is_err());
    }

    #[test]
    fn ideals_job_fills_ideal_counts() {
        let rec = execute(&JobSpec::new("BP", Size::Small, ModelSpec::Ideals)).unwrap();
        let c = rec.ideal.expect("ideals job records counts");
        assert!(c.baseline > 0);
        assert!(c.ln <= c.baseline);
        assert_eq!(rec.stats, Stats::default(), "ideals jobs do no timing run");
    }

    #[test]
    fn pre_cancelled_executor_never_simulates_or_caches() {
        let dir = std::env::temp_dir().join(format!("r2d2-exec-cancel-{}", std::process::id()));
        let cache = Cache::at(&dir);
        let token = CancelToken::new();
        token.cancel();
        let progress = Progress::new();
        let spec = JobSpec::new("NN", Size::Small, ModelSpec::Baseline);
        let err = Executor::new(&cache)
            .cancel(token)
            .progress(progress.clone())
            .run(&spec)
            .unwrap_err();
        assert!(err.contains("cancelled"), "{err}");
        assert!(cache.load(&spec).is_none(), "cancelled runs are not cached");
        assert!(progress.snapshot().finished, "mirror finishes on error too");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn progress_mirror_does_not_change_the_record() {
        let dir = std::env::temp_dir().join(format!("r2d2-exec-prog-{}", std::process::id()));
        let cache = Cache::at(&dir);
        let spec = JobSpec::new("NN", Size::Small, ModelSpec::Baseline);
        let progress = Progress::new();
        let watched = Executor::new(&cache)
            .use_cache(false)
            .progress(progress.clone())
            .run(&spec)
            .unwrap();
        let plain = execute(&spec).unwrap();
        assert_eq!(
            watched.stats, plain.stats,
            "mirrored run must stay bit-identical"
        );
        let snap = progress.snapshot();
        assert!(snap.finished);
        assert_eq!(snap.total_cycles, plain.stats.cycles);
        assert!(!snap.buckets.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn worker_count_bounds() {
        assert_eq!(worker_count(4, 2), 2);
        assert_eq!(worker_count(1, 100), 1);
        assert!(worker_count(0, 100) >= 1);
        assert_eq!(worker_count(8, 0), 1);
    }
}
