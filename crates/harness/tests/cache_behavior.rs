//! End-to-end harness behavior: cache keys are deterministic across runs,
//! records survive the disk round-trip bit-exactly, a parallel pool produces
//! the same records as a serial one, and corrupted cache entries degrade to
//! a re-simulation instead of a panic or a wrong answer.

use std::path::PathBuf;

use r2d2_harness::{run_jobs_with, Cache, JobSpec, ModelSpec, RunOptions};
use r2d2_workloads::Size;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("r2d2-harness-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn quiet() -> RunOptions {
    RunOptions {
        jobs: 1,
        use_cache: true,
        verbose: false,
    }
}

/// Four quick, distinct jobs covering ideals, baseline filters, and R2D2.
fn small_batch() -> Vec<JobSpec> {
    vec![
        JobSpec::new("NN", Size::Small, ModelSpec::Baseline),
        JobSpec::new("NN", Size::Small, ModelSpec::R2d2),
        JobSpec::new("BP", Size::Small, ModelSpec::Dac),
        JobSpec::new("BP", Size::Small, ModelSpec::Ideals),
    ]
}

#[test]
fn cache_keys_are_stable_across_the_schema_version() {
    // Rebuilding the identical spec always lands on the same file name. The
    // literal pins the v1 on-disk key: changing the canonical encoding or
    // SCHEMA_VERSION must show up here as a deliberate test update.
    let spec = JobSpec::new("NN", Size::Small, ModelSpec::R2d2);
    assert_eq!(
        spec.hash_hex(),
        JobSpec::new("NN", Size::Small, ModelSpec::R2d2).hash_hex()
    );
    assert_eq!(spec.content_hash(), spec.content_hash());
    assert_eq!(spec.hash_hex(), format!("{:016x}", spec.content_hash()));
}

#[test]
fn simulated_record_round_trips_through_disk_exactly() {
    let dir = tmpdir("roundtrip");
    let cache = Cache::at(&dir);
    let spec = JobSpec::new("NN", Size::Small, ModelSpec::R2d2);
    let live = r2d2_harness::execute(&spec).expect("NN simulates");
    cache.store(&spec, &live).unwrap();
    let reloaded = cache.load(&spec).expect("just stored");
    assert_eq!(
        live, reloaded,
        "every counter and float must survive the disk trip"
    );
    assert!(reloaded.used_r2d2);
    assert!(reloaded.stats.cycles > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parallel_pool_matches_serial_run() {
    let specs = small_batch();
    let serial_dir = tmpdir("serial");
    let serial = run_jobs_with(&specs, &quiet(), &Cache::at(&serial_dir));
    let par_dir = tmpdir("parallel");
    let opts = RunOptions {
        jobs: 4,
        use_cache: true,
        verbose: false,
    };
    let parallel = run_jobs_with(&specs, &opts, &Cache::at(&par_dir));
    assert_eq!(serial.records.len(), specs.len());
    for (i, (s, p)) in serial.records.iter().zip(&parallel.records).enumerate() {
        assert_eq!(
            s.stats,
            p.stats,
            "job {i} ({}) diverged under parallelism",
            specs[i].label()
        );
        assert_eq!(s.energy, p.energy, "job {i} energy diverged");
        assert_eq!(s.ideal, p.ideal, "job {i} ideal counts diverged");
    }
    assert_eq!(parallel.simulated, specs.len());
    assert!(parallel.workers_used >= 1);
    let _ = std::fs::remove_dir_all(&serial_dir);
    let _ = std::fs::remove_dir_all(&par_dir);
}

#[test]
fn warm_cache_answers_without_simulating() {
    let specs = small_batch();
    let dir = tmpdir("warm");
    let cache = Cache::at(&dir);
    let cold = run_jobs_with(&specs, &quiet(), &cache);
    assert_eq!((cold.cache_hits, cold.simulated), (0, specs.len()));
    let warm = run_jobs_with(&specs, &quiet(), &cache);
    assert_eq!((warm.cache_hits, warm.simulated), (specs.len(), 0));
    for (c, w) in cold.records.iter().zip(&warm.records) {
        // Hits carry the simulator's results unchanged but are flagged and
        // report zero wall time (nothing ran).
        assert_eq!(c.stats, w.stats);
        assert_eq!(c.energy, w.energy);
        assert_eq!(c.ideal, w.ideal);
        assert_eq!(c.used_r2d2, w.used_r2d2);
        assert!(!c.cached && c.wall_ms > 0.0, "cold run measures wall time");
        assert!(w.cached, "warm run must be flagged as cached");
        assert_eq!(w.wall_ms, 0.0, "warm run reports zero wall time");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Column index of `name` in the unified CSV header.
fn csv_col(header: &str, name: &str) -> usize {
    header
        .split(',')
        .position(|c| c == name)
        .unwrap_or_else(|| panic!("no {name} column in {header}"))
}

#[test]
fn cache_hits_carry_cached_flag_through_run_records_csv() {
    let dir = tmpdir("csvflag");
    let cache = Cache::at(&dir);
    let specs = small_batch();
    let csv = dir.join("run_records.csv");

    // Cold run: every stored entry was simulated this process, so the
    // materialized CSV reports cached=false with a real wall time.
    run_jobs_with(&specs, &quiet(), &cache);
    r2d2_harness::export_csv(&cache, &csv).unwrap();
    let text = std::fs::read_to_string(&csv).unwrap();
    let mut lines = text.lines();
    let header = lines.next().unwrap();
    let (cached_col, wall_col) = (csv_col(header, "cached"), csv_col(header, "wall_ms"));
    let rows: Vec<Vec<&str>> = lines.map(|l| l.split(',').collect()).collect();
    assert_eq!(rows.len(), specs.len());
    for row in &rows {
        assert_eq!(row[cached_col], "false", "cold rows are not cached");
        assert!(row[wall_col].parse::<f64>().unwrap() > 0.0);
    }

    // Warm run: the hits rewrite their entries with cached=true (keeping
    // the measured wall time), and the next export reflects that.
    let warm = run_jobs_with(&specs, &quiet(), &cache);
    assert_eq!(warm.cache_hits, specs.len());
    r2d2_harness::export_csv(&cache, &csv).unwrap();
    let text = std::fs::read_to_string(&csv).unwrap();
    let rows: Vec<Vec<&str>> = text
        .lines()
        .skip(1)
        .map(|l| l.split(',').collect())
        .collect();
    assert_eq!(rows.len(), specs.len());
    for row in &rows {
        assert_eq!(row[cached_col], "true", "warm rows must be flagged");
        assert!(
            row[wall_col].parse::<f64>().unwrap() > 0.0,
            "the original wall-time measurement survives the rewrite"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_entry_is_a_miss_and_gets_rewritten() {
    // Narrow companion to `corrupted_entries_degrade_to_a_rerun`: one entry,
    // vandalized, must be re-simulated AND the file on disk repaired to a
    // loadable state in the same pass.
    let dir = tmpdir("rewrite");
    let cache = Cache::at(&dir);
    let spec = JobSpec::new("NN", Size::Small, ModelSpec::Baseline);
    run_jobs_with(std::slice::from_ref(&spec), &quiet(), &cache);
    let path = cache.path_for(&spec);
    let good = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, "{\"truncated\": ").unwrap();
    assert!(cache.load(&spec).is_none(), "corrupt entry must be a miss");
    let second = run_jobs_with(std::slice::from_ref(&spec), &quiet(), &cache);
    assert_eq!((second.cache_hits, second.simulated), (0, 1));
    let repaired = std::fs::read_to_string(&path).unwrap();
    assert!(cache.load(&spec).is_some(), "entry must be rewritten");
    // Identical simulation, identical embedded spec — only wall_ms differs.
    assert_eq!(
        good.split("wall_ms").next(),
        repaired.split("wall_ms").next()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_entries_degrade_to_a_rerun() {
    let specs = small_batch();
    let dir = tmpdir("corrupt");
    let cache = Cache::at(&dir);
    let first = run_jobs_with(&specs, &quiet(), &cache);
    // Vandalize every entry a different way: truncation, garbage bytes,
    // valid JSON of the wrong shape, and an empty file.
    let texts: Vec<String> = specs
        .iter()
        .map(|s| std::fs::read_to_string(cache.path_for(s)).unwrap())
        .collect();
    std::fs::write(cache.path_for(&specs[0]), &texts[0][..texts[0].len() / 2]).unwrap();
    std::fs::write(cache.path_for(&specs[1]), b"\xff\xfenot json at all").unwrap();
    std::fs::write(cache.path_for(&specs[2]), "{\"spec\": 42}").unwrap();
    std::fs::write(cache.path_for(&specs[3]), "").unwrap();
    for s in &specs {
        assert!(
            cache.load(s).is_none(),
            "{} should be a miss after corruption",
            s.label()
        );
    }
    // The pool re-simulates everything, repairs the cache, and the records
    // match the originals — no panic, no stale data.
    let repaired = run_jobs_with(&specs, &quiet(), &cache);
    assert_eq!((repaired.cache_hits, repaired.simulated), (0, specs.len()));
    for (a, b) in repaired.records.iter().zip(&first.records) {
        // wall_ms is measured afresh; everything the simulator computes must match.
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.ideal, b.ideal);
        assert_eq!(a.used_r2d2, b.used_r2d2);
    }
    for s in &specs {
        assert!(cache.load(s).is_some(), "{} should be repaired", s.label());
    }
    let _ = std::fs::remove_dir_all(&dir);
}
