#!/usr/bin/env python3
"""Summarize the harness results under results/ (paper-vs-measured).

Run after `cargo bench` or `r2d2 sweep run all`:
    python3 scripts/summarize_results.py

Two sources are understood:
  * results/run_records.csv — the unified one-row-per-job export written by
    the r2d2-harness cache (schema: r2d2_harness::export::CSV_HEADER).
  * results/<figure>.csv — the legacy per-figure tables each bench target
    still writes alongside its stdout report.
"""
import csv
import math
import os
import sys

RESULTS = os.environ.get(
    "R2D2_RESULTS", os.path.join(os.path.dirname(__file__), "..", "results")
)

# Comparison models as named in run_records.csv's `model` column.
MODELS = ["dac", "darsie", "darsie_scalar", "r2d2"]


def rows(name):
    path = os.path.join(RESULTS, name + ".csv")
    if not os.path.exists(path):
        return None
    with open(path) as f:
        return list(csv.DictReader(f))


def last_row(name):
    r = rows(name)
    return r[-1] if r else None


def geomean(xs):
    xs = [x for x in xs if x > 0]
    if not xs:
        return float("nan")
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


def summarize_run_records():
    """Headline numbers straight from the unified cache export."""
    recs = rows("run_records")
    if not recs:
        return False
    # Nominal-config rows only (no GpuConfig overrides); prefer full size.
    nominal = [r for r in recs if not (r["num_sms"] or r["fetch_table"]
                                       or r["regid_calc"] or r["lr_add"])]
    sizes = {r["size"] for r in nominal}
    size = "full" if "full" in sizes else "small"
    nominal = [r for r in nominal if r["size"] == size]
    by_wl = {}
    for r in nominal:
        by_wl.setdefault(r["workload"], {})[r["model"]] = r

    print(f"unified run_records.csv: {len(recs)} cached jobs "
          f"({len(by_wl)} workloads at size={size})")
    for model in MODELS:
        speed, instr, energy = [], [], []
        for per in by_wl.values():
            base, m = per.get("baseline"), per.get(model)
            if not base or not m:
                continue
            speed.append(int(base["cycles"]) / max(int(m["cycles"]), 1))
            instr.append(100.0 * (1 - int(m["warp_instrs"])
                                  / max(int(base["warp_instrs"]), 1)))
            energy.append(100.0 * (1 - float(m["total_pj"])
                                   / max(float(base["total_pj"]), 1e-9)))
        if speed:
            d_instr = -sum(instr) / len(instr)   # negative = fewer instructions
            d_energy = -sum(energy) / len(energy)
            print(f"  {model:<14} geomean speedup {geomean(speed):5.2f}x"
                  f"   instr {d_instr:+5.1f}%"
                  f"   energy {d_energy:+5.1f}%"
                  f"   ({len(speed)} workloads)")
    ideals = [r for r in nominal if r["model"] == "ideals" and r["ideal_baseline"]]
    if ideals:
        def red(col):
            return sum(100.0 * (1 - int(r[col]) / max(int(r["ideal_baseline"]), 1))
                       for r in ideals) / len(ideals)
        print(f"  {'ideals':<14} avg reduction  WP {red('ideal_wp'):.0f}%"
              f" / TB {red('ideal_tb'):.0f}% / LN {red('ideal_ln'):.0f}%"
              f"   (paper Fig.4: 27/22/33)")
    # Stall-attribution columns (PR 3) are only non-zero for profiled jobs
    # (JobSpec.profile / `r2d2 sweep run --profile`). When present, show the
    # aggregate SM-cycle breakdown across all profiled rows.
    stall_cols = [c for c in (recs[0].keys() if recs else [])
                  if c.startswith("stall_")]
    prof = [r for r in recs
            if r.get("issued_sm_cycles") not in (None, "", "0")]
    if prof and stall_cols:
        issued = sum(int(r["issued_sm_cycles"]) for r in prof)
        tots = {c: sum(int(r[c] or 0) for r in prof) for c in stall_cols}
        denom = max(issued + sum(tots.values()), 1)
        parts = [f"issued {100 * issued / denom:.0f}%"]
        parts += [f"{c[len('stall_'):]} {100 * v / denom:.0f}%"
                  for c, v in tots.items() if v]
        print(f"  {'stalls':<14} {len(prof)} profiled jobs: "
              + "  ".join(parts))
    # wall_ms/cached are appended columns (PR 2); older exports lack them.
    wall = sorted((float(r["wall_ms"]) for r in recs
                   if r.get("wall_ms") not in (None, "")), reverse=True)
    if wall:
        ncached = sum(1 for r in recs if r.get("cached") == "true")
        line = (f"  {'wall clock':<14} {sum(wall) / 1e3:.2f}s simulator time"
                f" over {len(wall)} jobs, slowest {wall[0] / 1e3:.2f}s")
        if ncached:
            line += f", {ncached} cache hits (wall_ms=0)"
        print(line)
    print()
    return True


def main():
    print("paper-vs-measured summary (see EXPERIMENTS.md for discussion)\n")

    summarize_run_records()

    r = last_row("fig04_ideal_machines")
    if r:
        print(f"Fig.4  ideal reductions   paper WP 27 / TB 22 / LN 33"
              f"   measured WP {r['WP']} / TB {r['TB']} / LN {r['LN']}")

    r = last_row("fig12_instruction_reduction")
    if r:
        print(f"Fig.12 instr reduction    paper DAC 20 / DARSIE 18 / D+S 19 / R2D2 28"
              f"   measured {r['DAC']} / {r['DARSIE']} / {r['DARSIE+S']} / {r['R2D2']}")

    r = last_row("fig13_speedup")
    if r:
        print(f"Fig.13 speedup (geomean)  paper 1.15 / 1.14 / 1.14 / 1.25"
              f"   measured {r['DAC']} / {r['DARSIE']} / {r['DARSIE+S']} / {r['R2D2']}")

    r = last_row("fig14_instruction_breakdown")
    if r:
        print(f"Fig.14 linear instr share paper ~1% avg"
              f"   measured {r['linear_share']}% avg")

    r = last_row("fig15_cycle_breakdown")
    if r:
        print(f"Fig.15 linear cycle share paper ~1% avg"
              f"   measured {r['linear_share_%']}% avg (prologue share)")

    r = last_row("fig16_energy")
    if r:
        print(f"Fig.16 energy reduction   paper 9 / 8 / 9 / 17"
              f"   measured {r['DAC']} / {r['DARSIE']} / {r['DARSIE+S']} / {r['R2D2']}")

    t3 = rows("table3_blocks_sweep")
    if t3:
        reds = "/".join(x["instr_reduction_%"] for x in t3)
        sps = "/".join(x["speedup"] for x in t3)
        print(f"Table3 BP sweep           paper 38.3-39.7% & 1.35-1.36x"
              f"   measured {reds}% & {sps}x")

    s54 = rows("sec54_latency_study")
    if s54:
        worst = max(float(x["drop_%"]) for x in s54)
        print(f"Sec5.4 latency tolerance  paper ~1% drop at design point"
              f"   measured worst sweep drop {worst:.1f}%")

    s56 = rows("sec56_register_usage")
    if s56:
        fb = sum(1 for x in s56 if x["fallback"] == "true")
        print(f"Sec5.6 register fallback  paper: none   measured: {fb} of {len(s56)} kernels")

    s57 = rows("sec57_persistent_threads")
    if s57:
        for x in s57:
            print(f"Sec5.7 {x['bench']:>6}            reduction {x['instr_reduction_%']}%"
                  f", speedup {x['speedup']}x")

    s58 = rows("sec58_sm_sweep")
    if s58:
        sps = ", ".join(f"{x['sms']}:{x['geomean_speedup']}" for x in s58)
        print(f"Sec5.8 SM sweep           paper flat   measured {sps}")

    abl = last_row("ablation_design_choices")
    if abl:
        print(f"Ablation (avg reduction)  full {abl['full']} / no-group {abl['no-grouping']}"
              f" / lr=4 {abl['lr=4']} / lr=8 {abl['lr=8']} / no-scalar {abl['no-scalar-cr']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
