#!/usr/bin/env python3
"""Summarize the bench-harness CSVs under results/ (paper-vs-measured).

Run after `cargo bench`:  python3 scripts/summarize_results.py
"""
import csv
import os
import sys

RESULTS = os.path.join(os.path.dirname(__file__), "..", "results")


def rows(name):
    path = os.path.join(RESULTS, name + ".csv")
    if not os.path.exists(path):
        return None
    with open(path) as f:
        return list(csv.DictReader(f))


def last_row(name):
    r = rows(name)
    return r[-1] if r else None


def main():
    print("paper-vs-measured summary (see EXPERIMENTS.md for discussion)\n")

    r = last_row("fig04_ideal_machines")
    if r:
        print(f"Fig.4  ideal reductions   paper WP 27 / TB 22 / LN 33"
              f"   measured WP {r['WP']} / TB {r['TB']} / LN {r['LN']}")

    r = last_row("fig12_instruction_reduction")
    if r:
        print(f"Fig.12 instr reduction    paper DAC 20 / DARSIE 18 / D+S 19 / R2D2 28"
              f"   measured {r['DAC']} / {r['DARSIE']} / {r['DARSIE+S']} / {r['R2D2']}")

    r = last_row("fig13_speedup")
    if r:
        print(f"Fig.13 speedup (geomean)  paper 1.15 / 1.14 / 1.14 / 1.25"
              f"   measured {r['DAC']} / {r['DARSIE']} / {r['DARSIE+S']} / {r['R2D2']}")

    r = last_row("fig14_instruction_breakdown")
    if r:
        print(f"Fig.14 linear instr share paper ~1% avg"
              f"   measured {r['linear_share']}% avg")

    r = last_row("fig15_cycle_breakdown")
    if r:
        print(f"Fig.15 linear cycle share paper ~1% avg"
              f"   measured {r['linear_share_%']}% avg (prologue share)")

    r = last_row("fig16_energy")
    if r:
        print(f"Fig.16 energy reduction   paper 9 / 8 / 9 / 17"
              f"   measured {r['DAC']} / {r['DARSIE']} / {r['DARSIE+S']} / {r['R2D2']}")

    t3 = rows("table3_blocks_sweep")
    if t3:
        reds = "/".join(x["instr_reduction_%"] for x in t3)
        sps = "/".join(x["speedup"] for x in t3)
        print(f"Table3 BP sweep           paper 38.3-39.7% & 1.35-1.36x"
              f"   measured {reds}% & {sps}x")

    s54 = rows("sec54_latency_study")
    if s54:
        worst = max(float(x["drop_%"]) for x in s54)
        print(f"Sec5.4 latency tolerance  paper ~1% drop at design point"
              f"   measured worst sweep drop {worst:.1f}%")

    s56 = rows("sec56_register_usage")
    if s56:
        fb = sum(1 for x in s56 if x["fallback"] == "true")
        print(f"Sec5.6 register fallback  paper: none   measured: {fb} of {len(s56)} kernels")

    s57 = rows("sec57_persistent_threads")
    if s57:
        for x in s57:
            print(f"Sec5.7 {x['bench']:>6}            reduction {x['instr_reduction_%']}%"
                  f", speedup {x['speedup']}x")

    s58 = rows("sec58_sm_sweep")
    if s58:
        sps = ", ".join(f"{x['sms']}:{x['geomean_speedup']}" for x in s58)
        print(f"Sec5.8 SM sweep           paper flat   measured {sps}")

    abl = last_row("ablation_design_choices")
    if abl:
        print(f"Ablation (avg reduction)  full {abl['full']} / no-group {abl['no-grouping']}"
              f" / lr=4 {abl['lr=4']} / lr=8 {abl['lr=8']} / no-scalar {abl['no-scalar-cr']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
