#!/usr/bin/env bash
# Refresh the committed micro-bench baseline (results/bench_baseline.json)
# that CI's bench-regression gate compares against.
#
# Run this after an intentional performance change (or a CI runner
# migration), eyeball the diff, and commit the updated file together with
# the change that moved the numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

R2D2_MICRO_SMOKE=1 R2D2_BENCH_JSON=results/bench_baseline.json \
    cargo bench -p r2d2-bench --bench micro

echo
echo "baseline refreshed; review and commit results/bench_baseline.json:"
git --no-pager diff --stat -- results/bench_baseline.json || true
