#!/usr/bin/env python3
"""Gate micro-bench throughput regressions against a committed baseline.

Usage:
    check_bench_baseline.py <baseline.json> <new.json>

Both files are `R2D2_BENCH_JSON` dumps from `cargo bench -p r2d2-bench
--bench micro` (see crates/bench/benches/micro.rs). Every metric is
higher-is-better; the check fails if any baseline metric dropped by more
than the tolerance (default 25%, override with R2D2_BENCH_TOLERANCE=0.40
for noisier machines), or if a baseline metric disappeared.

Absolute throughput depends on the host, so the committed baseline mainly
guards the *relative* health of the hot paths on CI's runner class. After
an intentional perf change or a runner migration, refresh the baseline
with scripts/update_bench_baseline.sh.
"""

import json
import os
import sys


def load_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        sys.exit(f"error: {path} has no metrics object")
    return metrics


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip())
    baseline_path, new_path = sys.argv[1], sys.argv[2]
    tolerance = float(os.environ.get("R2D2_BENCH_TOLERANCE", "0.25"))
    baseline = load_metrics(baseline_path)
    new = load_metrics(new_path)

    failures = []
    width = max(len(k) for k in baseline)
    print(f"{'metric':<{width}} {'baseline':>14} {'new':>14} {'ratio':>7}")
    for name, old in sorted(baseline.items()):
        if name not in new:
            failures.append(f"{name}: missing from new run")
            print(f"{name:<{width}} {old:>14.1f} {'MISSING':>14}")
            continue
        ratio = new[name] / old if old > 0 else float("inf")
        flag = ""
        if ratio < 1.0 - tolerance:
            failures.append(f"{name}: {ratio:.2f}x of baseline "
                            f"(allowed >= {1.0 - tolerance:.2f}x)")
            flag = "  << REGRESSION"
        print(f"{name:<{width}} {old:>14.1f} {new[name]:>14.1f} "
              f"{ratio:>6.2f}x{flag}")
    for name in sorted(set(new) - set(baseline)):
        print(f"{name:<{width}} {'(new metric, not gated)':>14}")

    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) regressed beyond "
              f"{tolerance:.0%} tolerance:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        print("\nIf intentional, refresh with "
              "scripts/update_bench_baseline.sh and commit the result.",
              file=sys.stderr)
        sys.exit(1)
    print(f"\nOK: all {len(baseline)} metrics within {tolerance:.0%} "
          "of baseline")


if __name__ == "__main__":
    main()
