#!/usr/bin/env python3
"""Gate micro-bench throughput regressions against a committed baseline.

Usage:
    check_bench_baseline.py <baseline.json> <new.json>

Both files are `R2D2_BENCH_JSON` dumps from `cargo bench -p r2d2-bench
--bench micro` (see crates/bench/benches/micro.rs). Every metric is
higher-is-better; the check fails if any baseline metric dropped by more
than the tolerance (default 25%, override with R2D2_BENCH_TOLERANCE=0.40
for noisier machines), or if a baseline metric disappeared.

Absolute throughput depends on the host, so the committed baseline mainly
guards the *relative* health of the hot paths on CI's runner class. After
an intentional perf change or a runner migration, refresh the baseline
with scripts/update_bench_baseline.sh.

Multi-threaded metrics (`sim_*_tN_*`, N > 1) are only comparable when both
the baseline and the current run had real parallelism: on a single-core
host they mostly measure shard-barrier overhead. When either side's
`host_parallelism` is 1 (falling back to os.cpu_count() for dumps that
predate the field), those metrics are reported but skipped, not gated.
"""

import json
import os
import re
import sys

MULTI_THREAD_METRIC = re.compile(r"^sim_.*_t([2-9]|\d{2,})_")


def load_doc(path):
    with open(path) as f:
        doc = json.load(f)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        sys.exit(f"error: {path} has no metrics object")
    return doc, metrics


def host_parallelism(doc):
    par = doc.get("host_parallelism")
    if isinstance(par, int) and par > 0:
        return par
    return os.cpu_count() or 1


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip())
    baseline_path, new_path = sys.argv[1], sys.argv[2]
    tolerance = float(os.environ.get("R2D2_BENCH_TOLERANCE", "0.25"))
    baseline_doc, baseline = load_doc(baseline_path)
    new_doc, new = load_doc(new_path)

    single_core = min(host_parallelism(baseline_doc),
                      host_parallelism(new_doc)) == 1
    if single_core:
        print("note: single-core host on one side "
              f"(baseline={host_parallelism(baseline_doc)}, "
              f"new={host_parallelism(new_doc)}); "
              "multi-threaded sim_*_tN_* metrics are not gated")

    failures = []
    skipped = 0
    width = max(len(k) for k in baseline)
    print(f"{'metric':<{width}} {'baseline':>14} {'new':>14} {'ratio':>7}")
    for name, old in sorted(baseline.items()):
        skip_mt = single_core and MULTI_THREAD_METRIC.match(name)
        if name not in new:
            if skip_mt:
                skipped += 1
                print(f"{name:<{width}} {old:>14.1f} {'MISSING':>14}"
                      "  (skipped: single-core host)")
                continue
            failures.append(f"{name}: missing from new run")
            print(f"{name:<{width}} {old:>14.1f} {'MISSING':>14}")
            continue
        if skip_mt:
            skipped += 1
            ratio = new[name] / old if old > 0 else float("inf")
            print(f"{name:<{width}} {old:>14.1f} {new[name]:>14.1f} "
                  f"{ratio:>6.2f}x  (skipped: single-core host)")
            continue
        ratio = new[name] / old if old > 0 else float("inf")
        flag = ""
        if ratio < 1.0 - tolerance:
            failures.append(f"{name}: {ratio:.2f}x of baseline "
                            f"(allowed >= {1.0 - tolerance:.2f}x)")
            flag = "  << REGRESSION"
        print(f"{name:<{width}} {old:>14.1f} {new[name]:>14.1f} "
              f"{ratio:>6.2f}x{flag}")
    for name in sorted(set(new) - set(baseline)):
        print(f"{name:<{width}} {'(new metric, not gated)':>14}")

    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) regressed beyond "
              f"{tolerance:.0%} tolerance:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        print("\nIf intentional, refresh with "
              "scripts/update_bench_baseline.sh and commit the result.",
              file=sys.stderr)
        sys.exit(1)
    gated = len(baseline) - skipped
    note = f" ({skipped} multi-threaded metric(s) skipped)" if skipped else ""
    print(f"\nOK: all {gated} gated metrics within {tolerance:.0%} "
          f"of baseline{note}")


if __name__ == "__main__":
    main()
