#!/usr/bin/env python3
"""Fail CI if the HTTP surface drifts out of the frozen /v1 contract.

The wire API is versioned: every endpoint lives under `/v1`, and the only
sanctioned way to answer an unprefixed (pre-v1) spelling is the
`canonical_path` alias rewrite in `crates/serve/src/api.rs`, which tags the
response `Deprecation: true`. This script statically checks that contract:

  1. The `ENDPOINTS` inventory in api.rs is non-empty and all-`/v1`.
  2. Every inventoried endpoint is actually routed by the serve server
     (and, minus the alias machinery, by the dispatch server).
  3. No route match-arm or client call in serve/dispatch/client source
     mentions an endpoint path outside `/v1` — i.e. nobody hand-registers
     an unversioned handler that would bypass the deprecation mechanism.
  4. The alias mechanism itself is still wired: serve's connection handler
     calls `canonical_path` and emits the `Deprecation` header.

Run from the repo root: `python3 scripts/check_api_surface.py`.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
API = REPO / "crates/serve/src/api.rs"
SOURCES = [
    REPO / "crates/serve/src/server.rs",
    REPO / "crates/serve/src/client.rs",
    REPO / "crates/dispatch/src/server.rs",
]

errors = []


def fail(msg: str) -> None:
    errors.append(msg)


def strip_comments(text: str) -> str:
    """Drop // comments so prose mentioning legacy paths is not flagged."""
    return re.sub(r"//[^\n]*", "", text)


# -- 1. The inventory ---------------------------------------------------------

api_text = API.read_text()
table = re.search(r"pub const ENDPOINTS[^=]*=\s*&\[(.*?)\];", api_text, re.S)
if not table:
    sys.exit("FATAL: ENDPOINTS table not found in crates/serve/src/api.rs")

endpoints = re.findall(r'\("(\w+)",\s*"([^"]+)"\)', table.group(1))
if not endpoints:
    sys.exit("FATAL: ENDPOINTS table in api.rs is empty")

for method, path in endpoints:
    if not path.startswith("/v1/"):
        fail(f"api.rs ENDPOINTS: {method} {path} escaped the /v1 prefix")

# First path segments the API owns ("jobs", "healthz", ...): any string
# literal opening with one of these outside /v1 is an unversioned handler.
roots = {p.split("/")[2] for _, p in endpoints}

# -- 2. Inventory <-> router agreement ---------------------------------------

serve_text = (REPO / "crates/serve/src/server.rs").read_text()
dispatch_text = (REPO / "crates/dispatch/src/server.rs").read_text()
for who, text in [("serve", serve_text), ("dispatch", dispatch_text)]:
    for method, path in endpoints:
        # `{id}` segments are routed via a prefix match — check the literal
        # part up to the first placeholder.
        literal = path.split("{")[0]
        if literal not in text:
            fail(
                f"{who} server.rs never mentions {literal!r} "
                f"(inventoried as {method} {path})"
            )

# -- 3. No endpoint literal outside /v1 ---------------------------------------

root_pat = re.compile(r'"(/(?:%s)[^"]*)"' % "|".join(sorted(roots)))
for src in SOURCES:
    for lineno, line in enumerate(strip_comments(src.read_text()).splitlines(), 1):
        for lit in root_pat.findall(line):
            fail(
                f"{src.relative_to(REPO)}:{lineno}: endpoint literal {lit!r} "
                f"outside /v1 — aliases must go through canonical_path"
            )

# -- 4. The deprecation mechanism is still wired ------------------------------

if "pub fn canonical_path" not in api_text:
    fail("api.rs lost canonical_path — the deprecated-alias rewrite is gone")
if "canonical_path(" not in serve_text:
    fail("serve server.rs no longer routes through canonical_path")
if "Deprecation" not in serve_text:
    fail("serve server.rs no longer emits the Deprecation header for aliases")

if errors:
    print("API surface check FAILED:", file=sys.stderr)
    for e in errors:
        print(f"  - {e}", file=sys.stderr)
    sys.exit(1)

print(
    f"API surface check OK: {len(endpoints)} endpoints, all under /v1; "
    f"alias mechanism intact"
)
