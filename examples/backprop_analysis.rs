//! Walk through the paper's running example (Figs. 2, 3 and 7): the Rodinia
//! backprop weight-adjustment kernel, whose index expression
//! `(hid+1)*(HEIGHT*by+ty+1)+tx+1` the analyzer must recognize as a linear
//! combination with symbolic coefficients like `4*(P1+1)` and `64*(P1+1)`.
//!
//! Also reproduces the Sec. 2.1 claim that the address-generation prologue
//! collapses to a few percent of its baseline computations.
//!
//! Run with: `cargo run --release --example backprop_analysis`

use r2d2::core::analyzer::analyze;
use r2d2::core::transform::transform;
use r2d2::isa::{KernelBuilder, Operand, Ty};
use r2d2::sim::functional;
use r2d2::sim::{Dim3, GlobalMem, Launch};

fn main() {
    // The Fig. 2 / Fig. 7 instruction stream.
    const HEIGHT: i64 = 16;
    let mut b = KernelBuilder::new("bp_adjust_weights", 6);
    let r1 = b.ctaid_y(); //            mov %r1, %ctaid.y
    let r5 = b.shl_imm(r1, 4); //       shl %r5, %r1, 4
    let r2 = b.tid_y(); //              mov %r2, %tid.y
    let r6 = b.add(r5, r2); //          add %r6, %r5, %r2
    let r4 = b.ld_param32(1); //        ld.param %r4, [P1]  (hid)
    let r7 = b.add(r4, Operand::Imm(1)); // add %r7, %r4, 1
    let tx = b.tid_x();
    let r8 = b.add(tx, r7);
    let r9 = b.mad(r6, r7, r8); //      mad %r9, %r6, %r7, %r8
    let rd13 = b.mul(r9, Operand::Imm(4)); // mul %rd13, %r9, 4
    let wide = b.cvt_wide(rd13);
    let p5 = b.ld_param(5);
    let rd14 = b.add_wide(p5, wide); // add %rd14, %rd3, %rd13
    let f3 = b.ld_global(Ty::F32, rd14, 8); // ld.global %f3, [%rd14+8]
    b.st_global(Ty::F32, rd14, 8, f3);
    let kernel = b.build();
    let _ = HEIGHT;

    println!("kernel (the paper's Fig. 7 stream):\n{kernel}");

    // --- the analyzer's coefficient vectors -------------------------------
    let analysis = analyze(&kernel);
    println!("coefficient vectors {{c, x, y, z, X, Y, Z}}:");
    for (pc, instr) in kernel.instrs.iter().enumerate() {
        if let Some(r) = instr.dst_reg() {
            if let Some(v) = analysis.coef(r) {
                println!("  pc {pc:02}  %r{:<2} = {v}", r.0);
            }
        }
    }
    let v = analysis.coef(rd14).expect("rd14 is linear");
    println!("\n%rd14 (the paper's {{P5+4*P1+4, 4, 4*(P1+1), 0, 0, 64*(P1+1), 0}}):");
    println!("       {v}\n");

    // --- instruction-count collapse of the prologue ------------------------
    // Count the address-generation prologue dynamically, baseline vs R2D2.
    let r2 = transform(&kernel);
    let grid = Dim3::d2(1, 64);
    let block = Dim3::d2(16, 16);
    let mut g1 = GlobalMem::new();
    let buf1 = g1.alloc(1 << 22);
    let l1 = Launch::new(kernel.clone(), grid, block, vec![buf1, 16, 0, 0, 0, buf1]);
    let s1 = functional::run(&l1, &mut g1, 10_000_000, None).unwrap();

    let mut g2 = GlobalMem::new();
    let buf2 = g2.alloc(1 << 22);
    let mut l2 = Launch::new(
        r2.kernel.clone(),
        grid,
        block,
        vec![buf2, 16, 0, 0, 0, buf2],
    );
    l2.meta = Some(r2.meta.clone());
    let s2 = functional::run_r2d2(&l2, &mut g2, 10_000_000, None).unwrap();
    assert_eq!(g1.bytes(), g2.bytes());

    println!("dynamic thread instructions over a 64-block launch:");
    println!("  baseline: {}", s1.thread_instrs);
    println!(
        "  R2D2:     {} ({:.0}% of baseline; the paper's ideal bound for this \
         prologue is ~9%)",
        s2.thread_instrs,
        100.0 * s2.thread_instrs as f64 / s1.thread_instrs as f64
    );
    println!(
        "  linear-block share: coef {} + tidx {} + bidx {} of {} total",
        s2.warp_by_phase[0], s2.warp_by_phase[1], s2.warp_by_phase[2], s2.warp_instrs
    );
}
