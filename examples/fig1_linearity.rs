//! Reproduce the paper's Figure 1: the linearity of address generation for
//! `arr[threadIdx.x + blockDim.x * blockIdx.x]` with a (4,1,1) block and a
//! (4,1,1) grid, and the redundancy counts the introduction quotes —
//! 52-of-64 unique computations for the naive operator-precedence evaluation
//! vs 29-of-80 for the expanded linear-combination form.
//!
//! Run with: `cargo run --example fig1_linearity`

use std::collections::HashSet;

const THREADS: usize = 4;
const BLOCKS: usize = 4;
const BYTE_SIZE: i64 = 4;
const BASE_ADDR: i64 = 100;

fn print_row(label: &str, vals: &[i64]) {
    print!("{label:>28} |");
    for v in vals {
        print!(" {v:>3}");
    }
    println!();
}

/// Count computations that are unique across the 16 threads for one row:
/// each thread performs one computation; identical (operation, operands)
/// pairs are redundant (the paper's grayed cells).
fn unique(vals: &[i64]) -> usize {
    vals.iter().collect::<HashSet<_>>().len()
}

fn main() {
    let ids: Vec<(i64, i64)> = (0..BLOCKS as i64)
        .flat_map(|b| (0..THREADS as i64).map(move |t| (b, t)))
        .collect();

    // ---- Figure 1(a): evaluation in operator-precedence order -------------
    // row1: blockDim.x * blockIdx.x
    // row2: threadIdx.x + row1
    // row3: byteSize * row2
    // row4: baseAddr + row3
    println!("Figure 1(a) — baseAddr + byteSize*(threadIdx.x + blockDim.x*blockIdx.x)\n");
    let row1: Vec<i64> = ids.iter().map(|(b, _)| THREADS as i64 * b).collect();
    let row2: Vec<i64> = ids.iter().map(|(b, t)| t + THREADS as i64 * b).collect();
    let row3: Vec<i64> = row2.iter().map(|v| BYTE_SIZE * v).collect();
    let row4: Vec<i64> = row3.iter().map(|v| BASE_ADDR + v).collect();
    print_row("blockDim.x*blockIdx.x", &row1);
    print_row("+ threadIdx.x", &row2);
    print_row("* byteSize", &row3);
    print_row("+ baseAddr", &row4);
    let unique_a = unique(&row1) + unique(&row2) + unique(&row3) + unique(&row4);
    println!("\nunique computations: {unique_a} of {}", 4 * ids.len());
    assert_eq!(unique_a, 52, "the paper counts 52 of 64");

    // ---- Figure 1(b): the expanded linear combination ----------------------
    // row1: byteSize * blockDim.x           (scalar: same for every thread)
    // row2: byteSize * threadIdx.x          (repeats across blocks)
    // row3: row1 * blockIdx.x               (same within a block)
    // row4: baseAddr + row2                 (thread-index part + base)
    // row5: row4 + row3                     (the address: tuple sum)
    println!("\nFigure 1(b) — baseAddr + byteSize*threadIdx.x + byteSize*blockDim.x*blockIdx.x\n");
    let row1: Vec<i64> = ids.iter().map(|_| BYTE_SIZE * THREADS as i64).collect();
    let row2: Vec<i64> = ids.iter().map(|(_, t)| BYTE_SIZE * t).collect();
    let row3: Vec<i64> = ids
        .iter()
        .map(|(b, _)| BYTE_SIZE * THREADS as i64 * b)
        .collect();
    let row4: Vec<i64> = row2.iter().map(|v| BASE_ADDR + v).collect();
    let row5: Vec<i64> = row4.iter().zip(&row3).map(|(a, b)| a + b).collect();
    print_row("byteSize*blockDim.x", &row1);
    print_row("byteSize*threadIdx.x", &row2);
    print_row("row1*blockIdx.x", &row3);
    print_row("baseAddr + row2", &row4);
    print_row("row4 + row3 (address)", &row5);
    // The paper's 29-of-80 best case: scalar row once, thread rows once per
    // distinct thread index, block rows once per block, and the final sums
    // kept as (thread-part, block-part) tuples — no row-5 computations.
    let unique_b = 1 + unique(&row2) + unique(&row3) + unique(&row4);
    println!("\nunique computations: {unique_b} of {}", 5 * ids.len());
    assert_eq!(
        unique_b, 13,
        "1 scalar + 4 thread-scaled + 4 block parts + 4 thread+base"
    );

    // The introduction's 29-of-80 counts each *row-1..4 computation that must
    // actually execute* under R2D2's decoupling with the tuple optimization:
    //   row1: 1 (single thread)   row2: 4 (one block)   row3: 4 (one per block)
    //   row4: 4 (one block)       row5: 16 (the LSU add per access)
    let r2d2_executed = 1 + THREADS + BLOCKS + THREADS + ids.len();
    println!("R2D2-executed computations (incl. the per-access tuple add): {r2d2_executed} of 80");
    assert_eq!(r2d2_executed, 29, "the paper's 29-of-80");

    // ---- And the machine agrees: analyze the same kernel ------------------
    use r2d2::core::analyzer::analyze;
    use r2d2::isa::{KernelBuilder, Ty};
    let mut b = KernelBuilder::new("fig1", 1);
    let t = b.tid_x();
    let bd = b.ntid_x();
    let bi = b.ctaid_x();
    let prod = b.mul(bd, bi);
    let idx = b.add(t, prod);
    let off = b.shl_imm_wide(idx, 2);
    let base = b.ld_param(0);
    let addr = b.add_wide(base, off);
    let v = b.ld_global(Ty::B32, addr, 0);
    b.st_global(Ty::B32, addr, 0, v);
    let k = b.build();
    let a = analyze(&k);
    let vec = a.coef(addr).expect("the Fig. 1 address is linear");
    println!("\nanalyzer's coefficient vector for the address: {vec}");
    println!("(= baseAddr + 4*tid.x + 4*ntid.x*ctaid.x — the linearity of SIMT)");
}
