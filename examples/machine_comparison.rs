//! Run one Table 2 workload under every machine model the paper evaluates
//! (baseline, DAC, DARSIE, DARSIE+Scalar, R2D2) and print a comparison.
//!
//! Run with: `cargo run --release --example machine_comparison [WORKLOAD]`
//! e.g. `cargo run --release --example machine_comparison SRAD2`

use r2d2::baselines::{DacFilter, DarsieFilter, DarsieScalarFilter};
use r2d2::core::machine::{run_baseline, run_r2d2, run_with_filter};
use r2d2::prelude::*;
use r2d2::sim::Stats;
use r2d2::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "BP".to_string());
    let w = workloads::build(&name, Size::Small)
        .unwrap_or_else(|| panic!("unknown workload {name}; see r2d2::workloads::NAMES"));
    let cfg = GpuConfig::default().with_num_sms(16);

    let mut results: Vec<(&str, Stats, f64)> = Vec::new();
    let mut reference: Option<Vec<u8>> = None;

    type ModelFn<'a> = Box<dyn Fn(&Launch, &mut GlobalMem) -> r2d2::core::machine::RunResult + 'a>;
    let models: Vec<(&str, ModelFn)> = vec![
        (
            "Baseline",
            Box::new(|l, g| run_baseline(&cfg, l, g).unwrap()),
        ),
        (
            "DAC",
            Box::new(|l, g| run_with_filter(&cfg, l, g, &mut DacFilter::new()).unwrap()),
        ),
        (
            "DARSIE",
            Box::new(|l, g| run_with_filter(&cfg, l, g, &mut DarsieFilter::new()).unwrap()),
        ),
        (
            "DARSIE+S",
            Box::new(|l, g| run_with_filter(&cfg, l, g, &mut DarsieScalarFilter::new()).unwrap()),
        ),
        (
            "R2D2",
            Box::new(|l, g| {
                run_r2d2(&cfg, &l.kernel, l.grid, l.block, l.params.clone(), g).unwrap()
            }),
        ),
    ];

    for (mname, run) in &models {
        let mut g = w.gmem.clone();
        let mut stats = Stats::default();
        let mut energy = 0.0;
        for l in &w.launches {
            let r = run(l, &mut g);
            stats.merge_sequential(&r.stats);
            energy += r.energy.total_pj();
        }
        match &reference {
            None => reference = Some(g.bytes().to_vec()),
            Some(bytes) => assert_eq!(
                bytes.as_slice(),
                g.bytes(),
                "{mname} changed results — machine models must be value-preserving"
            ),
        }
        results.push((mname, stats, energy));
    }

    let base = results[0].1.clone();
    let base_e = results[0].2;
    println!(
        "workload {name} ({} launches), results identical across machines ✓\n",
        w.launches.len()
    );
    println!(
        "{:>10} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "machine", "warp instrs", "reduction", "cycles", "speedup", "energy"
    );
    for (mname, s, e) in &results {
        println!(
            "{:>10} {:>12} {:>9.1}% {:>10} {:>9.2}x {:>9.1}%",
            mname,
            s.warp_instrs,
            100.0 * (base.warp_instrs as f64 - s.warp_instrs as f64) / base.warp_instrs as f64,
            s.cycles,
            base.cycles as f64 / s.cycles as f64,
            100.0 * (base_e - e) / base_e,
        );
    }
    Ok(())
}
