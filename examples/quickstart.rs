//! Quickstart: build a kernel, transform it with R2D2, and compare the
//! baseline GPU against the R2D2 GPU on the cycle-level simulator.
//!
//! Run with: `cargo run --release --example quickstart`

use r2d2::core::transform::transform;
use r2d2::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // SAXPY: y[i] = a * x[i] + y[i], with the usual CUDA index math.
    let mut b = KernelBuilder::new("saxpy", 3);
    let i = b.global_tid_x(); // ctaid.x * ntid.x + tid.x
    let off = b.shl_imm_wide(i, 2);
    let px = b.ld_param(0);
    let py = b.ld_param(1);
    let ax = b.add_wide(px, off);
    let ay = b.add_wide(py, off);
    let x = b.ld_global(Ty::F32, ax, 0);
    let y = b.ld_global(Ty::F32, ay, 0);
    let a = b.ld_param(2);
    let af = b.cvt(Ty::F32, a);
    let t = b.mad_ty(Ty::F32, af, x, y);
    b.st_global(Ty::F32, ay, 0, t);
    let kernel = b.build();

    println!("original kernel:\n{kernel}");

    // The R2D2 software pipeline (paper Sec. 3): analyze + decouple.
    let r2 = transform(&kernel);
    println!("transformed kernel (coef/tidx/bidx blocks + rewritten stream):");
    println!("{}", r2.kernel);
    println!(
        "removed {} of {} instructions; {} linear registers, {} thread-index \
         registers, {} coefficient registers\n",
        r2.report.removed_instrs,
        r2.report.original_static,
        r2.report.n_lr,
        r2.report.n_tr,
        r2.report.n_cr
    );

    // Run both machines on identical inputs.
    let cfg = GpuConfig::default().with_num_sms(16);
    let grid = Dim3::d1(512);
    let block = Dim3::d1(256);
    let n = grid.count() * block.count();

    let setup = |g: &mut GlobalMem| {
        let x = g.alloc(n * 4);
        let y = g.alloc(n * 4);
        for i in 0..n {
            g.write_f32(x, i, i as f32);
            g.write_f32(y, i, 1.0);
        }
        (x, y)
    };

    let mut g1 = GlobalMem::new();
    let (x1, y1) = setup(&mut g1);
    let launch = Launch::new(kernel.clone(), grid, block, vec![x1, y1, 2]);
    let base = r2d2::core::machine::run_baseline(&cfg, &launch, &mut g1)?;

    let mut g2 = GlobalMem::new();
    let (x2, y2) = setup(&mut g2);
    let r2run =
        r2d2::core::machine::run_r2d2(&cfg, &kernel, grid, block, vec![x2, y2, 2], &mut g2)?;

    assert_eq!(g1.bytes(), g2.bytes(), "bit-identical results");
    assert_eq!(g1.read_f32(y1, 100), 201.0);

    println!(
        "baseline: {:>9} warp instructions, {:>7} cycles",
        base.stats.warp_instrs, base.stats.cycles
    );
    println!(
        "R2D2:     {:>9} warp instructions, {:>7} cycles",
        r2run.stats.warp_instrs, r2run.stats.cycles
    );
    println!(
        "          {:.1}% fewer instructions, {:.2}x speedup, {:.1}% less energy",
        100.0 * (base.stats.warp_instrs - r2run.stats.warp_instrs) as f64
            / base.stats.warp_instrs as f64,
        base.stats.cycles as f64 / r2run.stats.cycles as f64,
        100.0 * (base.energy.total_pj() - r2run.energy.total_pj()) / base.energy.total_pj()
    );
    Ok(())
}
