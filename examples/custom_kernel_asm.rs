//! Write a kernel in the textual assembly, transform it, and inspect the
//! decoupled output — the full software path a compiler would drive.
//!
//! Run with: `cargo run --release --example custom_kernel_asm`

use r2d2::core::transform::transform;
use r2d2::isa::parse_kernel;
use r2d2::sim::{functional, Dim3, GlobalMem, Launch};

const SRC: &str = r#"
.kernel scale_rows params=3 {
  // row = ctaid.x * ntid.x + tid.x ; out[row*W + c] = 2 * in[row*W + c]
  mov.b32 %r0, %tid.x;
  mov.b32 %r1, %ctaid.x;
  mov.b32 %r2, %ntid.x;
  mad.b32 %r3, %r1, %r2, %r0;      // row
  ld.param.b32 %r4, [P2];          // W
  mul.b32 %r5, %r3, %r4;           // row * W
  mov.b32 %r6, 0;                  // c (loop iterator)
LOOP:
  add.b32 %r7, %r5, %r6;           // idx = row*W + c
  cvt.b64 %r8, %r7;
  shl.b64 %r9, %r8, 2;
  ld.param.b64 %r10, [P0];
  add.b64 %r11, %r10, %r9;         // &in[idx]
  ld.global.f32 %r12, [%r11];
  add.f32 %r13, %r12, %r12;        // 2*x
  ld.param.b64 %r14, [P1];
  add.b64 %r15, %r14, %r9;         // &out[idx]
  st.global.f32 [%r15], %r13;
  add.b32 %r6, %r6, 1;
  setp.lt.b32 %p0, %r6, %r4;
  @%p0 bra LOOP;
  exit;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = parse_kernel(SRC)?;
    kernel.validate()?;
    println!("parsed kernel:\n{kernel}");

    let r2 = transform(&kernel);
    println!("R2D2 metadata: {:?}\n", r2.meta);
    println!("transformed kernel:\n{}", r2.kernel);
    println!(
        "removed {} instructions from the main stream ({} groups spilled)",
        r2.report.removed_instrs, r2.report.spilled_groups
    );

    // Execute both and verify equivalence.
    let rows = 512u64;
    let w = 16u64;
    let setup = |g: &mut GlobalMem| {
        let input = g.alloc(rows * w * 4);
        let out = g.alloc(rows * w * 4);
        for i in 0..rows * w {
            g.write_f32(input, i, i as f32 * 0.25);
        }
        (input, out)
    };
    let mut g1 = GlobalMem::new();
    let (i1, o1) = setup(&mut g1);
    let l1 = Launch::new(
        kernel,
        Dim3::d1((rows / 128) as u32),
        Dim3::d1(128),
        vec![i1, o1, w],
    );
    let s1 = functional::run(&l1, &mut g1, 10_000_000, None)?;

    let mut g2 = GlobalMem::new();
    let (i2, o2) = setup(&mut g2);
    let mut l2 = Launch::new(
        r2.kernel,
        Dim3::d1((rows / 128) as u32),
        Dim3::d1(128),
        vec![i2, o2, w],
    );
    l2.meta = Some(r2.meta);
    let s2 = functional::run_r2d2(&l2, &mut g2, 10_000_000, None)?;

    assert_eq!(g1.bytes(), g2.bytes(), "identical results");
    println!(
        "\nequivalent ✓   thread instructions: baseline {} vs R2D2 {} ({:.1}% saved)",
        s1.thread_instrs,
        s2.thread_instrs,
        100.0 * (s1.thread_instrs - s2.thread_instrs) as f64 / s1.thread_instrs as f64
    );
    Ok(())
}
