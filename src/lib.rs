#![warn(missing_docs)]
//! # R2D2 — Removing ReDunDancy Utilizing Linearity of Address Generation in GPUs
//!
//! A full Rust reproduction of the ISCA 2023 paper by Ha, Oh and Ro,
//! including the SIMT GPU simulator it needs as a substrate.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`sym`] | `r2d2-sym` | coefficient-vector algebra (paper Fig. 6) |
//! | [`isa`] | `r2d2-isa` | the PTX-like virtual ISA, builder, assembler |
//! | [`sim`] | `r2d2-sim` | cycle-level SIMT GPU simulator (Table 1 config) |
//! | [`trace`] | `r2d2-trace` | event-sink observability: stall attribution, Chrome traces |
//! | [`energy`] | `r2d2-energy` | event-based energy model (Fig. 16) |
//! | [`core`] | `r2d2-core` | the R2D2 analyzer/generator/microarchitecture |
//! | [`baselines`] | `r2d2-baselines` | WP/TB/LN ideal machines, DAC, DARSIE |
//! | [`workloads`] | `r2d2-workloads` | the Table 2 benchmark zoo |
//! | [`harness`] | `r2d2-harness` | parallel job runner + content-addressed result cache |
//! | [`serve`] | `r2d2-serve` | resident simulation service (job queue, workers, HTTP/JSON API) |
//! | [`dispatch`] | `r2d2-dispatch` | multi-node dispatch tier (consistent-hash routing, failover, fleet metrics) |
//!
//! # Quickstart
//!
//! ```
//! use r2d2::prelude::*;
//!
//! // Build a workload, run it on the baseline GPU and on R2D2, compare.
//! let w = r2d2::workloads::build("BP", r2d2::workloads::Size::Small).unwrap();
//! let cfg = GpuConfig::default().with_num_sms(8);
//!
//! let mut g1 = w.gmem.clone();
//! let mut base = Stats::default();
//! for l in &w.launches {
//!     base.merge_sequential(&run_baseline(&cfg, l, &mut g1)?.stats);
//! }
//!
//! let mut g2 = w.gmem.clone();
//! let mut r2 = Stats::default();
//! for l in &w.launches {
//!     let (launch, _) = make_launch(&cfg, &l.kernel, l.grid, l.block, l.params.clone());
//!     r2.merge_sequential(&SimSession::new(&cfg).run(&launch, &mut g2)?);
//! }
//!
//! assert_eq!(g1.bytes(), g2.bytes(), "identical results");
//! assert!(r2.warp_instrs < base.warp_instrs, "fewer dynamic instructions");
//! # Ok::<(), r2d2::sim::SimError>(())
//! ```

pub use r2d2_baselines as baselines;
pub use r2d2_core as core;
pub use r2d2_dispatch as dispatch;
pub use r2d2_energy as energy;
pub use r2d2_harness as harness;
pub use r2d2_isa as isa;
pub use r2d2_serve as serve;
pub use r2d2_sim as sim;
pub use r2d2_sym as sym;
pub use r2d2_trace as trace;
pub use r2d2_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use r2d2_baselines::{DacFilter, DarsieFilter, DarsieScalarFilter};
    pub use r2d2_core::machine::{run_baseline, run_r2d2, run_with_filter};
    pub use r2d2_core::transform::{make_launch, transform};
    pub use r2d2_isa::{Kernel, KernelBuilder, Ty};
    pub use r2d2_sim::{
        BaselineFilter, Dim3, GlobalMem, GpuConfig, IssueFilter, Launch, SimSession, Stats,
    };
    pub use r2d2_workloads::{Size, Workload};
}
